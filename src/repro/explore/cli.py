"""Command line interface for the exploration experiments.

Usage::

    python -m repro.explore table1            # reproduce Table I
    python -m repro.explore speedup           # TLM vs gate-level comparison
    python -m repro.explore sweep-compression # compression-ratio sweep
    python -m repro.explore sweep-tam-width   # TAM-width sweep
    python -m repro.explore schedules         # schedule exploration
    python -m repro.explore strategies        # list scheduler strategies
    python -m repro.explore campaign          # exhaustive scenario campaign
    python -m repro.explore adaptive          # Pareto + successive halving
    python -m repro.explore merge             # recombine shard artifacts
    python -m repro.explore serve             # live campaign coordinator
    python -m repro.explore work              # attach a worker process
    python -m repro.explore submit            # queue a campaign on a coordinator
    python -m repro.explore status            # inspect a running coordinator

``campaign`` and ``adaptive`` write the versioned CSV/JSON artifacts
(``--csv`` / ``--json``) described in :mod:`repro.explore.campaign`
(``schema_version``) and :mod:`repro.explore.adaptive`
(``adaptive_schema_version``); the tables printed to stdout are condensed
views and carry no schema guarantee.  ``campaign``, ``adaptive`` and
``merge`` additionally take ``--store DIR`` to persist the result rows as a
columnar store (:mod:`repro.explore.store`: typed numpy column chunks plus a
manifest); for ``merge`` the store *is* the merge path — shard artifacts
stream in one at a time and ``--csv``/``--json`` are regenerated from the
columns, byte-identical to the in-memory merge.

Schedule strategies: ``--strategy NAME[:key=val,...]`` (repeatable, on
``campaign`` and ``adaptive``) appends parameterized scheduler strategies
(:mod:`repro.schedule.strategies`) to the simulated schedule list;
``strategies`` lists the registry.

Distribution: ``campaign --shard I/N`` runs only the I-th of N
deterministically planned shards (each host re-plans the identical grid from
the same flags) and writes a shard artifact; ``merge`` validates and
recombines the shard artifacts into the single-host result
(:mod:`repro.explore.distrib`).  ``merge --partial`` accepts an incomplete
shard set: present shards merge, missing spans are reported on stderr, and
``--gaps`` writes the re-plan worklist covering only the gaps.  ``adaptive
--max-rounds K`` checkpoints a search at a round boundary and ``adaptive
--resume-from ART.json`` finishes it without re-simulating the completed
rounds; ``adaptive --shard I/N`` routes every round's job list through the
shard plan/run/merge machinery (executing all N shards locally, starting at
shard I — round selection is global, so a single invocation needs every
shard's rows) and stays bitwise-identical to an unsharded run.

Live coordination: ``serve`` runs a long-lived coordinator
(:mod:`repro.explore.coordinator`) on a localhost socket; ``work`` attaches
a worker process that leases deterministically planned spans, executes them
on the standard shard path and streams the results back; ``submit`` queues
a campaign (the same axes flags as ``campaign``) and can wait for the
merged artifacts — which are bitwise-identical to a single-host
``campaign`` run of the same grid, even across worker death and work
stealing.  ``status`` renders a running coordinator's status document; an
unreachable coordinator is an operational failure (one ``error:`` line,
exit 2), not a traceback.  Observability: ``serve --metrics-port`` exposes
a Prometheus ``/metrics`` endpoint backed by the same registry as the
status document, and ``--log-file`` (on ``serve`` and ``work``) appends
structured JSONL run events (:mod:`repro.explore.metrics`; see
docs/observability.md).

Exit status: 0 on success, 2 when the requested work fails (a job fails, an
artifact is invalid or unreadable, a merge is rejected) — operational
failures are reported as one ``error:`` line on stderr and never exit 0.
``merge --partial`` with a gapped shard set exits 3
(:data:`EXIT_REPLANNABLE_GAPS`): the merge itself succeeded and the
written artifact is valid-but-partial, but jobs remain re-plannable via
``--gaps`` — machine-distinguishable from a rejected merge (2) and from a
complete one (0).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.explore.adaptive import (
    DEFAULT_OBJECTIVES,
    adaptive_search_from_axes,
    parse_objective,
    race_jobs,
    resume_search,
    surrogate_screen_candidates,
)
from repro.explore.campaign import CampaignJob, campaign_from_axes, run_jobs
from repro.explore.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    Coordinator,
    CoordinatorClient,
    CoordinatorSession,
    CoordinatorServer,
)
from repro.explore.distrib import (
    job_to_dict,
    load_artifact,
    merge_shard_documents,
    plan_shards,
    replan_document,
    run_shard,
    write_merged_csv,
    write_merged_json,
)
from repro.explore.experiments import run_table1
from repro.explore.metrics import MetricsServer, StructuredLog
from repro.explore.report import (
    format_adaptive,
    format_campaign,
    format_coordinator_status,
    format_merged,
    format_shard,
    format_store_summary,
    format_strategies,
    format_table,
    format_table1,
    format_worker_stats,
)
from repro.explore.worker import CampaignWorker
from repro.explore.store import (
    ColumnarStore,
    merge_artifacts_to_store,
    store_adaptive_result,
    store_campaign_run,
    store_shard_run,
    write_document_csv,
    write_document_json,
)
from repro.explore.scenarios import ScenarioSpec
from repro.schedule.strategies import canonical_schedule_name, is_strategy
from repro.explore.speedup import run_speed_comparison
from repro.explore.sweeps import (
    compression_ratio_sweep,
    schedule_exploration,
    tam_width_sweep,
)


def _print_sweep(points, value_label: str) -> None:
    rows = [{
        value_label: point.value,
        "length_mcycles": point.metrics.test_length_mcycles,
        "peak_tam": f"{point.metrics.peak_tam_utilization:.0%}",
        "avg_tam": f"{point.metrics.avg_tam_utilization:.0%}",
    } for point in points]
    print(format_table(rows, [value_label, "length_mcycles", "peak_tam", "avg_tam"]))


def _run_table1(args) -> None:
    results = run_table1(schedule_names=args.schedules or None)
    print(format_table1(results))
    if args.validate:
        print()
        for result in results:
            print(result.validation.summary())
            print()


def _run_speedup(args) -> None:
    result = run_speed_comparison(gate_level_cycles=args.gate_cycles)
    print(result.summary())


def _run_compression(args) -> None:
    _print_sweep(compression_ratio_sweep(tuple(args.ratios)), "compression_ratio")


def _run_tam_width(args) -> None:
    _print_sweep(tam_width_sweep(tuple(args.widths)), "tam_width_bits")


def _run_schedules(args) -> None:
    comparisons = schedule_exploration(power_budget=args.power_budget,
                                       strategies=tuple(args.strategy or ()))
    rows = [{
        "schedule": comparison.schedule.name,
        "estimated_mcycles": comparison.estimated_cycles / 1e6,
        "simulated_mcycles": comparison.metrics.test_length_mcycles,
        "peak_power": comparison.metrics.peak_power,
    } for comparison in comparisons]
    print(format_table(rows, ["schedule", "estimated_mcycles",
                              "simulated_mcycles", "peak_power"]))


def _scenario_base(args) -> ScenarioSpec:
    schedules = tuple(args.schedules) + tuple(args.strategy or ())
    if not schedules:
        raise ValueError(
            "no schedules to simulate: pass --schedules and/or --strategy")
    return ScenarioSpec(
        name="base",
        patterns_per_core=args.patterns,
        memory_words=args.memory_words,
        seed=args.seed,
        schedules=schedules,
    )


def _scenario_axes(args) -> dict:
    axes = {
        "core_count": [int(v) for v in args.core_counts],
        "tam_width_bits": [int(v) for v in args.tam_widths],
        "compression_ratio": [float(v) for v in args.compression_ratios],
        "power_budget": [float(v) for v in args.power_budgets],
    }
    # Grid seeds are derived from the full axis assignment, so the newer
    # axes join the grid only when actually swept — a command that leaves
    # them at their defaults reproduces the exact scenarios (and numbers)
    # of the pre-extension CLI.
    for axis, values, default in (
        ("wrapper_parallel_width_bits", args.wrapper_parallel_widths, [0]),
        ("wrapper_serial_width_bits", args.wrapper_serial_widths, [1]),
        ("ate_vector_memory_words", args.ate_memory_words, [0]),
    ):
        values = [int(v) for v in values]
        if values != default:
            axes[axis] = values
    return axes


def _run_campaign(args) -> None:
    campaign = campaign_from_axes(_scenario_axes(args), base=_scenario_base(args))
    deterministic = not args.timing
    if args.shard is not None:
        if args.surrogate or args.race:
            raise ValueError(
                "--shard plans the full deterministic job grid; it cannot "
                "be combined with --surrogate or --race")
        index, count = args.shard
        shard = plan_shards(campaign, count)[index]
        result = run_shard(shard, workers=args.workers)
        print(format_shard(result))
        if args.store:
            store_shard_run(result, args.store, deterministic=deterministic)
            print(f"wrote {args.store}")
        if args.csv:
            result.write_csv(args.csv, deterministic=deterministic)
            print(f"wrote {args.csv}")
        if args.json:
            result.write_json(args.json, deterministic=deterministic)
            print(f"wrote {args.json}")
        return
    if args.race and args.workers > 1:
        raise ValueError(
            "racing runs jobs in-process against a shared incumbent front; "
            "it cannot be combined with --workers > 1")
    jobs = campaign.jobs()
    if args.surrogate:
        pairs = [(job.spec, job.schedule) for job in jobs]
        screen, kept = surrogate_screen_candidates(
            campaign.specs, pairs, DEFAULT_OBJECTIVES, args.surrogate_keep)
        jobs = [CampaignJob(spec=spec, schedule=schedule)
                for spec, schedule in kept]
        print(f"surrogate screen: kept {screen.kept} of {screen.screened} "
              f"candidate(s)", file=sys.stderr)
    if args.race:
        run, stopped = race_jobs(jobs)
        if stopped:
            print(f"racing stopped {len(stopped)} dominated job(s) early; "
                  f"the artifact keeps {len(run.outcomes)} completed row(s)",
                  file=sys.stderr)
    elif args.surrogate:
        run = run_jobs(jobs, workers=args.workers)
    else:
        run = campaign.run(workers=args.workers)
    print(format_campaign(run))
    if args.store:
        store_campaign_run(run, args.store, deterministic=deterministic)
        print(f"wrote {args.store}")
    if args.csv:
        run.write_csv(args.csv, deterministic=deterministic)
        print(f"wrote {args.csv}")
    if args.json:
        run.write_json(args.json, deterministic=deterministic)
        print(f"wrote {args.json}")


#: ``merge --partial`` exit status when the merged artifact has gaps that a
#: re-plan can cover: success-with-work-remaining, distinct from validation
#: failure (2) and a complete merge (0).
EXIT_REPLANNABLE_GAPS = 3


def _run_merge(args) -> Optional[int]:
    if args.store:
        # Streaming path: validate headers, append one shard at a time to
        # the columnar store, then regenerate artifacts chunk by chunk —
        # bitwise identical to the in-memory merge, without ever holding
        # the full row set.
        store, documents = merge_artifacts_to_store(
            args.artifacts, args.store, partial=args.partial)
        store = ColumnarStore.open(args.store)
        merged = store.document_header
        merged["row_count"] = store.row_count
    else:
        store = None
        documents = [load_artifact(path) for path in args.artifacts]
        merged = merge_shard_documents(documents, partial=args.partial)
    gaps = merged.get("partial", {}).get("missing", [])
    for span in gaps:
        print(f"missing shard {span['index']}/{merged['partial']['count']}: "
              f"jobs [{span['start']}, {span['stop']})", file=sys.stderr)
    print(format_merged(documents, merged))
    if store is not None:
        print(f"wrote {args.store}")
        print()
        print(format_store_summary(store))
    if args.gaps:
        if gaps:
            write_merged_json(replan_document(merged), args.gaps)
            print(f"wrote {args.gaps}")
        else:
            print("no gaps: complete shard set, no re-plan written",
                  file=sys.stderr)
    if args.csv:
        if store is not None:
            write_document_csv(store, args.csv)
        else:
            write_merged_csv(merged, args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        if store is not None:
            write_document_json(store, args.json)
        else:
            write_merged_json(merged, args.json)
        print(f"wrote {args.json}")
    if gaps:
        # All requested outputs were written (valid, marked partial); the
        # distinct status tells automation "re-plan and merge again" without
        # parsing stderr.  Regression-tested in test_cli.py.
        return EXIT_REPLANNABLE_GAPS
    return None


def _run_strategies(args) -> None:
    print(format_strategies())


def _run_adaptive(args) -> None:
    shards, lead = (None, 0) if args.shard is None else (args.shard[1],
                                                         args.shard[0])
    if shards is not None and args.timing:
        # Sharded rounds rebuild outcomes from deterministic shard rows, so
        # there are no timings to keep — warn instead of writing columns of
        # plausible-looking zeros.
        print("warning: --shard rebuilds outcomes from deterministic shard "
              "rows; the --timing columns will read as zero", file=sys.stderr)
    if args.resume_from:
        result = resume_search(load_artifact(args.resume_from),
                               workers=args.workers,
                               max_rounds=args.max_rounds,
                               round_shards=shards, lead_shard=lead)
    else:
        objectives = (tuple(args.objectives) if args.objectives
                      else DEFAULT_OBJECTIVES)
        search = adaptive_search_from_axes(
            _scenario_axes(args), base=_scenario_base(args),
            objectives=objectives, eta=args.eta, min_budget=args.min_budget,
            surrogate=args.surrogate, surrogate_keep=args.surrogate_keep,
            race=args.race)
        result = search.run(workers=args.workers, max_rounds=args.max_rounds,
                            round_shards=shards, lead_shard=lead)
    print(format_adaptive(result))
    deterministic = not args.timing
    if args.store:
        # Row table + provenance columns only: the adaptive JSON document
        # carries search-definition keys after the rows, so the resumable
        # checkpoint artifact stays with --json (see store_adaptive_result).
        store_adaptive_result(result, args.store, deterministic=deterministic)
        print(f"wrote {args.store}")
    if args.csv:
        result.write_csv(args.csv, deterministic=deterministic)
        print(f"wrote {args.csv}")
    if args.json:
        result.write_json(args.json, deterministic=deterministic)
        print(f"wrote {args.json}")


def _run_serve(args) -> None:
    log = StructuredLog(args.log_file) if args.log_file else None
    coordinator = Coordinator(
        lease_timeout=args.lease_timeout,
        on_event=lambda message: print(message, file=sys.stderr, flush=True),
        log=log)
    server = CoordinatorServer(coordinator, (args.host, args.port))
    metrics_server = None
    # The chosen port is the line automation waits for (--port 0 binds an
    # ephemeral port); flush so a pipe reader sees it before serve blocks.
    print(f"coordinator listening on {args.host}:{server.port}", flush=True)
    if args.metrics_port is not None:
        metrics_server = MetricsServer(coordinator.metrics,
                                       (args.host, args.metrics_port))
        metrics_server.start()
        print(f"metrics listening on {args.host}:{metrics_server.port}",
              flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        coordinator.drain()
    finally:
        server.server_close()
        if metrics_server is not None:
            metrics_server.stop()
        if log is not None:
            log.close()
    print(format_coordinator_status(coordinator.status()))
    coordinator.close()


def _connect_value(text: str):
    """Parse ``--connect HOST:PORT``."""
    host, separator, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not separator or not host or not 0 < port < 65536:
        raise argparse.ArgumentTypeError(
            f"connect must be HOST:PORT (e.g. 127.0.0.1:7621), got {text!r}")
    return host, port


def _run_work(args) -> None:
    host, port = args.connect
    if args.protocol == "v1":
        client = CoordinatorClient(host, port)
    else:
        client = CoordinatorSession(host, port)
    log = StructuredLog(args.log_file) if args.log_file else None
    worker = CampaignWorker(
        client, args.id or f"worker-{os.getpid()}",
        poll_interval=args.poll,
        max_idle_polls=args.max_idle_polls,
        prefetch=args.prefetch,
        reconnect_tries=args.reconnect_tries,
        reconnect_backoff=args.reconnect_backoff,
        status_callback=lambda message: print(message, file=sys.stderr,
                                              flush=True),
        log=log)
    try:
        stats = worker.run()
    finally:
        close = getattr(client, "close", None)
        if close is not None:
            close()
        if log is not None:
            log.close()
    print(format_worker_stats(worker.worker_id, stats))


def _run_status(args) -> None:
    host, port = args.connect
    client = CoordinatorClient(host, port, timeout=args.timeout)
    try:
        status = client.status()
    except OSError as error:
        # ConnectionRefusedError etc. carry no address; re-raise with one so
        # the one-line `error:` report (main's rc-2 path) says *which*
        # coordinator is unreachable instead of a bare errno string.
        detail = getattr(error, "strerror", None) or str(error) \
            or type(error).__name__
        raise ConnectionError(
            f"coordinator at {host}:{port} is unreachable ({detail})"
        ) from error
    if args.json:
        json.dump(status, sys.stdout, indent=2)
        print()
    else:
        print(format_coordinator_status(status))


def _run_submit(args) -> None:
    if args.timing or args.surrogate or args.race:
        raise ValueError(
            "submit queues the full deterministic job grid on the "
            "coordinator; it cannot be combined with --timing, --surrogate "
            "or --race")
    if args.shutdown_after and not args.wait:
        raise ValueError("--shutdown-after requires --wait: shutting down "
                         "right after submitting would drain the queue "
                         "before the campaign runs")
    if args.workers != 1:
        raise ValueError(
            "submit does not run jobs itself: parallelism comes from the "
            "'work' processes attached to the coordinator, not --workers")
    campaign = campaign_from_axes(_scenario_axes(args),
                                  base=_scenario_base(args))
    jobs = campaign.jobs()
    # The coordinator process writes the artifacts, possibly from another
    # working directory — pin the paths before they cross the socket.
    resolve = lambda path: os.path.abspath(path) if path else None
    host, port = args.connect
    client = CoordinatorClient(host, port)
    campaign_id = client.submit(
        [job_to_dict(job) for job in jobs], args.shards,
        label=args.label, json_path=resolve(args.json),
        csv_path=resolve(args.csv), store_path=resolve(args.store))
    print(f"submitted {campaign_id}: {len(jobs)} job(s) in "
          f"{args.shards} span(s)")
    if args.wait:
        import time as _time
        while True:
            progress = client.campaign_progress(campaign_id)
            if progress["complete"]:
                break
            print(f"{campaign_id}: {progress['completed']}/"
                  f"{progress['spans']} span(s) done, "
                  f"{progress['pending']} pending, "
                  f"{progress['leased']} leased, "
                  f"{progress['steals']} steal(s)",
                  file=sys.stderr, flush=True)
            _time.sleep(args.poll)
        progress = client.campaign_progress(campaign_id)
        print(f"{campaign_id} complete: {progress['row_count']} row(s) "
              f"from {progress['spans']} span(s), "
              f"{progress['steals']} steal(s)")
        for path in (resolve(args.json), resolve(args.csv),
                     resolve(args.store)):
            if path:
                print(f"wrote {path}")
    if args.shutdown_after:
        client.shutdown()


def _shard_value(text: str):
    """Parse ``--shard I/N``: a 0-based shard index out of N shards."""
    index_text, separator, count_text = text.partition("/")
    try:
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must be I/N with integer I and N (e.g. 0/4), got {text!r}")
    if not separator:
        raise argparse.ArgumentTypeError("shard must be I/N (e.g. 0/4)")
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must be in [0, {count}) for {count} shard(s)")
    return index, count


def _strategy_value(text: str) -> str:
    """Parse and canonicalize ``--strategy NAME[:key=val,...]``."""
    try:
        if not is_strategy(text):
            from repro.schedule.strategies import strategy_names
            raise argparse.ArgumentTypeError(
                f"unknown scheduler strategy {text.partition(':')[0]!r} "
                f"(registered: {', '.join(strategy_names())})")
        return canonical_schedule_name(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _round_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("max-rounds must be >= 1")
    return value


def _eta_value(text: str) -> float:
    value = float(text)
    if value <= 1.0:
        raise argparse.ArgumentTypeError("eta must be > 1")
    return value


def _budget_fraction(text: str) -> float:
    value = float(text)
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError("min-budget must be in (0, 1]")
    return value


def _keep_fraction(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError("surrogate-keep must be in [0, 1]")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Test design space exploration experiments "
                    "(DATE 2009 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="reproduce Table I")
    table1.add_argument("--schedules", nargs="*", default=None,
                        help="subset of schedule names to simulate")
    table1.add_argument("--validate", action="store_true",
                        help="also print the schedule validation reports")
    table1.set_defaults(handler=_run_table1)

    speedup = subparsers.add_parser("speedup",
                                    help="TLM vs gate-level speed comparison")
    speedup.add_argument("--gate-cycles", type=int, default=400,
                         help="gate-level cycles to simulate for calibration")
    speedup.set_defaults(handler=_run_speedup)

    compression = subparsers.add_parser("sweep-compression",
                                        help="compression-ratio sweep")
    compression.add_argument("--ratios", nargs="*", type=float,
                             default=[1, 2, 5, 10, 50, 100, 1000])
    compression.set_defaults(handler=_run_compression)

    width = subparsers.add_parser("sweep-tam-width", help="TAM width sweep")
    width.add_argument("--widths", nargs="*", type=int, default=[8, 16, 32, 64])
    width.set_defaults(handler=_run_tam_width)

    schedules = subparsers.add_parser("schedules",
                                      help="hand-written vs generated schedules")
    schedules.add_argument("--power-budget", type=float, default=6.0)
    schedules.add_argument("--strategy", action="append", default=None,
                           type=_strategy_value, metavar="NAME[:k=v,...]",
                           help="also simulate this scheduler strategy "
                                "(repeatable)")
    schedules.set_defaults(handler=_run_schedules)

    strategies = subparsers.add_parser(
        "strategies",
        help="list the registered scheduler strategies and their parameters")
    strategies.set_defaults(handler=_run_strategies)

    def add_scenario_space_arguments(subparser) -> None:
        """Axes and base-spec flags shared by ``campaign`` and ``adaptive``."""
        subparser.add_argument("--core-counts", nargs="*", type=int,
                               default=[1, 2, 3],
                               help="synthetic core counts to sweep")
        subparser.add_argument("--tam-widths", nargs="*", type=int,
                               default=[16, 32],
                               help="TAM / system bus widths (bits) to sweep")
        subparser.add_argument("--compression-ratios", nargs="*", type=float,
                               default=[50.0],
                               help="test data compression ratios to sweep")
        subparser.add_argument("--power-budgets", nargs="*", type=float,
                               default=[6.0],
                               help="peak power budgets for the greedy scheduler")
        subparser.add_argument("--wrapper-parallel-widths", nargs="*", type=int,
                               default=[0],
                               help="wrapper parallel-port widths in bits to "
                                    "sweep (0: one lane per scan chain)")
        subparser.add_argument("--wrapper-serial-widths", nargs="*", type=int,
                               default=[1],
                               help="wrapper serial-port / configuration-ring "
                                    "widths in bits to sweep")
        subparser.add_argument("--ate-memory-words", nargs="*", type=int,
                               default=[0],
                               help="ATE vector-memory limits in link words "
                                    "to sweep (0: unlimited)")
        subparser.add_argument("--patterns", type=int, default=200,
                               help="external-scan patterns per core")
        subparser.add_argument("--memory-words", type=int, default=0,
                               help="embedded memory words (0: no memory test)")
        subparser.add_argument("--seed", type=int, default=1,
                               help="base seed of the scenario generator")
        subparser.add_argument("--schedules", nargs="*",
                               default=["sequential", "greedy"],
                               help="schedules simulated for every scenario "
                                    "(pass an empty --schedules to simulate "
                                    "only the --strategy recipes)")
        subparser.add_argument("--strategy", action="append", default=None,
                               type=_strategy_value, metavar="NAME[:k=v,...]",
                               help="append a parameterized scheduler "
                                    "strategy to the schedule list, e.g. "
                                    "binpack:fit=worst or "
                                    "anneal:steps=512,seed=9 (repeatable; "
                                    "see the 'strategies' subcommand)")
        subparser.add_argument("--workers", type=int, default=1,
                               help="worker processes (1: run in-process)")
        subparser.add_argument("--csv", default=None,
                               help="write result rows to this CSV file")
        subparser.add_argument("--json", default=None,
                               help="write a JSON artifact to this file")
        subparser.add_argument("--store", default=None, metavar="DIR",
                               help="write the result rows to a columnar "
                                    "store directory (typed numpy column "
                                    "chunks; see repro.explore.store)")
        subparser.add_argument("--timing", action="store_true",
                               help="keep the nondeterministic timing columns "
                                    "(cpu_seconds, worker) in the artifacts; "
                                    "timing artifacts are not bitwise "
                                    "mergeable/resumable")
        surrogate = subparser.add_mutually_exclusive_group()
        surrogate.add_argument("--surrogate", dest="surrogate",
                               action="store_true", default=False,
                               help="pre-screen the candidate grid under the "
                                    "vectorized batch estimator and simulate "
                                    "only the estimator Pareto front plus the "
                                    "--surrogate-keep margin")
        surrogate.add_argument("--no-surrogate", dest="surrogate",
                               action="store_false",
                               help="simulate the full candidate grid "
                                    "(the default; artifacts are "
                                    "bitwise-identical to pre-surrogate runs)")
        subparser.add_argument("--surrogate-keep", type=_keep_fraction,
                               default=0.25, metavar="FRACTION",
                               help="fraction of the estimator-dominated "
                                    "candidates forwarded into simulation "
                                    "anyway (0: trust the estimator front "
                                    "alone, 1: disable pruning; default 0.25)")
        race = subparser.add_mutually_exclusive_group()
        race.add_argument("--race", dest="race", action="store_true",
                          default=False,
                          help="race simulations in-process against the "
                               "incumbent Pareto front and early-stop jobs "
                               "that provably cannot join it (requires the "
                               "default minimizing objectives; incompatible "
                               "with --workers > 1 and --shard)")
        race.add_argument("--no-race", dest="race", action="store_false",
                          help="simulate every job to completion "
                               "(the default)")

    campaign = subparsers.add_parser(
        "campaign",
        help="exhaustive exploration campaign over generated SoC scenarios")
    add_scenario_space_arguments(campaign)
    campaign.add_argument("--shard", type=_shard_value, default=None,
                          metavar="I/N",
                          help="run only the I-th (0-based) of N "
                               "deterministically planned shards of the "
                               "campaign and embed shard provenance in the "
                               "JSON artifact (recombine with 'merge')")
    campaign.set_defaults(handler=_run_campaign)

    merge = subparsers.add_parser(
        "merge",
        help="validate and recombine shard artifacts into the single-host "
             "result set")
    merge.add_argument("artifacts", nargs="+",
                       help="shard JSON artifacts written by campaign --shard")
    merge.add_argument("--csv", default=None,
                       help="write the merged rows to this CSV file")
    merge.add_argument("--json", default=None,
                       help="write the merged JSON artifact to this file "
                            "(bitwise-identical to a single-host "
                            "deterministic run)")
    merge.add_argument("--store", default=None, metavar="DIR",
                       help="merge through a columnar store directory: "
                            "shards stream in one at a time (bounded "
                            "memory) and --csv/--json are regenerated "
                            "from the store, still bitwise-identical to "
                            "the in-memory merge")
    merge.add_argument("--partial", action="store_true",
                       help="accept an incomplete shard set: merge the "
                            "shards that exist, report missing spans on "
                            "stderr and mark the artifact as partial")
    merge.add_argument("--gaps", default=None, metavar="REPLAN",
                       help="with --partial: write the re-plan worklist "
                            "(missing shard spans) to this JSON file")
    merge.set_defaults(handler=_run_merge)

    adaptive = subparsers.add_parser(
        "adaptive",
        help="adaptive exploration: successive halving + Pareto pruning")
    add_scenario_space_arguments(adaptive)
    adaptive.add_argument("--eta", type=_eta_value, default=2.0,
                          help="halving rate: keep 1/eta of the candidates "
                               "per round, grow the budget by eta")
    adaptive.add_argument("--min-budget", type=_budget_fraction, default=0.25,
                          help="pattern-volume fraction of the cheapest round")
    adaptive.add_argument("--objectives", nargs="+", default=None,
                          type=parse_objective,
                          help="objectives as column[:min|:max] "
                               "(default: test_length_cycles peak_power)")
    adaptive.add_argument("--max-rounds", type=_round_count, default=None,
                          help="stop after this many rounds (a round-boundary "
                               "checkpoint; finish later with --resume-from)")
    adaptive.add_argument("--resume-from", default=None, metavar="ARTIFACT",
                          help="resume from a checkpoint JSON artifact "
                               "written by --max-rounds; the artifact defines "
                               "the search, so scenario-space/search flags "
                               "are ignored")
    adaptive.add_argument("--shard", type=_shard_value, default=None,
                          metavar="I/N",
                          help="execute every round's job list as N "
                               "deterministically planned shards through the "
                               "shard plan/run/merge machinery, leading with "
                               "shard I (all shards run locally: round "
                               "selection needs every row; results are "
                               "bitwise-identical to an unsharded run)")
    adaptive.set_defaults(handler=_run_adaptive)

    serve = subparsers.add_parser(
        "serve",
        help="run the live campaign coordinator on a localhost socket "
             "(fair-share queue, span leases, work stealing, streaming "
             "merge; see docs/coordinator.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1; the "
                            "protocol is unauthenticated and meant for "
                            "localhost)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port to bind (0: pick an ephemeral port; "
                            "the chosen port is printed on stdout)")
    serve.add_argument("--lease-timeout", type=float,
                       default=DEFAULT_LEASE_TIMEOUT, metavar="SECONDS",
                       help="seconds a lease may go without a heartbeat "
                            "before its span is stolen back into the queue")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="also serve a Prometheus-text-format /metrics "
                            "endpoint on this port (0: ephemeral; the "
                            "chosen port is printed on stdout; see "
                            "docs/observability.md)")
    serve.add_argument("--log-file", default=None, metavar="PATH",
                       help="append structured JSONL run events (one per "
                            "lease/steal/completion/merge-drain) to PATH")
    serve.set_defaults(handler=_run_serve)

    work = subparsers.add_parser(
        "work",
        help="attach a worker to a coordinator: lease spans, execute them "
             "on the standard shard path, stream the results back")
    work.add_argument("--connect", type=_connect_value, required=True,
                      metavar="HOST:PORT",
                      help="coordinator address printed by 'serve'")
    work.add_argument("--id", default=None,
                      help="worker name in leases and status documents "
                           "(default: worker-<pid>)")
    work.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                      help="sleep between lease requests while the queue "
                           "is empty")
    work.add_argument("--max-idle-polls", type=int, default=None, metavar="N",
                      help="exit after N consecutive empty polls "
                           "(default: keep polling until the coordinator "
                           "shuts down)")
    work.add_argument("--log-file", default=None, metavar="PATH",
                      help="append structured JSONL worker events (leases, "
                           "completions, exits) to PATH")
    work.add_argument("--protocol", choices=("v1", "v2"), default="v2",
                      help="wire protocol: v2 pipelines framed ops over one "
                           "persistent socket with binary columnar "
                           "completions; v1 is the legacy connection-per-op "
                           "JSONL client (default: v2)")
    work.add_argument("--prefetch", type=int, default=1, metavar="N",
                      help="lease up to N spans per round trip and coalesce "
                           "their heartbeats into one frame (default: 1)")
    work.add_argument("--reconnect-tries", type=int, default=3, metavar="N",
                      help="retry a lost coordinator connection up to N "
                           "times with exponential backoff before "
                           "abandoning leases and exiting (0 disables; "
                           "default: 3)")
    work.add_argument("--reconnect-backoff", type=float, default=0.5,
                      metavar="SECONDS",
                      help="initial backoff before the first reconnect "
                           "attempt; doubles per retry (default: 0.5)")
    work.set_defaults(handler=_run_work)

    status = subparsers.add_parser(
        "status",
        help="fetch and render a running coordinator's status document "
             "(the same registry the /metrics endpoint exposes)")
    status.add_argument("--connect", type=_connect_value, required=True,
                        metavar="HOST:PORT",
                        help="coordinator address printed by 'serve'")
    status.add_argument("--timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="socket timeout for the status request")
    status.add_argument("--json", action="store_true",
                        help="print the raw versioned status document "
                             "instead of the table")
    status.set_defaults(handler=_run_status)

    submit = subparsers.add_parser(
        "submit",
        help="queue a campaign on a coordinator (same scenario-space flags "
             "as 'campaign'); artifacts are written by the coordinator and "
             "are bitwise-identical to a single-host run")
    add_scenario_space_arguments(submit)
    submit.add_argument("--connect", type=_connect_value, required=True,
                        metavar="HOST:PORT",
                        help="coordinator address printed by 'serve'")
    submit.add_argument("--shards", type=int, default=4, metavar="N",
                        help="number of deterministic spans to plan the "
                             "campaign into (the unit of leasing/stealing; "
                             "must not exceed the job count)")
    submit.add_argument("--label", default=None,
                        help="human-readable campaign label in status output")
    submit.add_argument("--wait", action="store_true",
                        help="poll the coordinator until the campaign "
                             "completes, reporting span progress on stderr")
    submit.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="progress-poll interval for --wait")
    submit.add_argument("--shutdown-after", action="store_true",
                        help="with --wait: drain and stop the coordinator "
                             "once this campaign completes")
    submit.set_defaults(handler=_run_submit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        status = args.handler(args)
    except (ValueError, KeyError, OSError) as error:
        # Failed jobs (unknown schedules raise KeyError), unreadable/invalid
        # artifacts (ValueError incl. MergeError/JSONDecodeError) and missing
        # files are operational failures, not crashes: report one line on
        # stderr and exit non-zero (regression-tested in test_cli.py).
        # Anything else is a genuine bug and keeps its traceback.
        if isinstance(error, KeyError):
            # str(KeyError) is only the repr of the missing key ("'anneal2'"),
            # which reads as a bare quoted word with no context on stderr —
            # name the failure mode and unwrap the key.
            key = error.args[0] if len(error.args) == 1 else error.args
            message = f"unknown schedule/key: {key}"
        else:
            message = str(error) or type(error).__name__
        print(f"error: {message}", file=sys.stderr)
        return 2
    return 0 if status is None else int(status)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
