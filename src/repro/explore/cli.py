"""Command line interface for the exploration experiments.

Usage::

    python -m repro.explore table1            # reproduce Table I
    python -m repro.explore speedup           # TLM vs gate-level comparison
    python -m repro.explore sweep-compression # compression-ratio sweep
    python -m repro.explore sweep-tam-width   # TAM-width sweep
    python -m repro.explore schedules         # schedule exploration
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.explore.experiments import run_table1
from repro.explore.report import format_table, format_table1
from repro.explore.speedup import run_speed_comparison
from repro.explore.sweeps import (
    compression_ratio_sweep,
    schedule_exploration,
    tam_width_sweep,
)


def _print_sweep(points, value_label: str) -> None:
    rows = [{
        value_label: point.value,
        "length_mcycles": point.metrics.test_length_mcycles,
        "peak_tam": f"{point.metrics.peak_tam_utilization:.0%}",
        "avg_tam": f"{point.metrics.avg_tam_utilization:.0%}",
    } for point in points]
    print(format_table(rows, [value_label, "length_mcycles", "peak_tam", "avg_tam"]))


def _run_table1(args) -> None:
    results = run_table1(schedule_names=args.schedules or None)
    print(format_table1(results))
    if args.validate:
        print()
        for result in results:
            print(result.validation.summary())
            print()


def _run_speedup(args) -> None:
    result = run_speed_comparison(gate_level_cycles=args.gate_cycles)
    print(result.summary())


def _run_compression(args) -> None:
    _print_sweep(compression_ratio_sweep(tuple(args.ratios)), "compression_ratio")


def _run_tam_width(args) -> None:
    _print_sweep(tam_width_sweep(tuple(args.widths)), "tam_width_bits")


def _run_schedules(args) -> None:
    comparisons = schedule_exploration(power_budget=args.power_budget)
    rows = [{
        "schedule": comparison.schedule.name,
        "estimated_mcycles": comparison.estimated_cycles / 1e6,
        "simulated_mcycles": comparison.metrics.test_length_mcycles,
        "peak_power": comparison.metrics.peak_power,
    } for comparison in comparisons]
    print(format_table(rows, ["schedule", "estimated_mcycles",
                              "simulated_mcycles", "peak_power"]))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Test design space exploration experiments "
                    "(DATE 2009 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="reproduce Table I")
    table1.add_argument("--schedules", nargs="*", default=None,
                        help="subset of schedule names to simulate")
    table1.add_argument("--validate", action="store_true",
                        help="also print the schedule validation reports")
    table1.set_defaults(handler=_run_table1)

    speedup = subparsers.add_parser("speedup",
                                    help="TLM vs gate-level speed comparison")
    speedup.add_argument("--gate-cycles", type=int, default=400,
                         help="gate-level cycles to simulate for calibration")
    speedup.set_defaults(handler=_run_speedup)

    compression = subparsers.add_parser("sweep-compression",
                                        help="compression-ratio sweep")
    compression.add_argument("--ratios", nargs="*", type=float,
                             default=[1, 2, 5, 10, 50, 100, 1000])
    compression.set_defaults(handler=_run_compression)

    width = subparsers.add_parser("sweep-tam-width", help="TAM width sweep")
    width.add_argument("--widths", nargs="*", type=int, default=[8, 16, 32, 64])
    width.set_defaults(handler=_run_tam_width)

    schedules = subparsers.add_parser("schedules",
                                      help="hand-written vs generated schedules")
    schedules.add_argument("--power-budget", type=float, default=6.0)
    schedules.set_defaults(handler=_run_schedules)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.handler(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
