"""Command line interface for the exploration experiments.

Usage::

    python -m repro.explore table1            # reproduce Table I
    python -m repro.explore speedup           # TLM vs gate-level comparison
    python -m repro.explore sweep-compression # compression-ratio sweep
    python -m repro.explore sweep-tam-width   # TAM-width sweep
    python -m repro.explore schedules         # schedule exploration
    python -m repro.explore campaign          # parallel scenario campaign
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.explore.campaign import campaign_from_axes
from repro.explore.experiments import run_table1
from repro.explore.report import format_campaign, format_table, format_table1
from repro.explore.scenarios import ScenarioSpec
from repro.explore.speedup import run_speed_comparison
from repro.explore.sweeps import (
    compression_ratio_sweep,
    schedule_exploration,
    tam_width_sweep,
)


def _print_sweep(points, value_label: str) -> None:
    rows = [{
        value_label: point.value,
        "length_mcycles": point.metrics.test_length_mcycles,
        "peak_tam": f"{point.metrics.peak_tam_utilization:.0%}",
        "avg_tam": f"{point.metrics.avg_tam_utilization:.0%}",
    } for point in points]
    print(format_table(rows, [value_label, "length_mcycles", "peak_tam", "avg_tam"]))


def _run_table1(args) -> None:
    results = run_table1(schedule_names=args.schedules or None)
    print(format_table1(results))
    if args.validate:
        print()
        for result in results:
            print(result.validation.summary())
            print()


def _run_speedup(args) -> None:
    result = run_speed_comparison(gate_level_cycles=args.gate_cycles)
    print(result.summary())


def _run_compression(args) -> None:
    _print_sweep(compression_ratio_sweep(tuple(args.ratios)), "compression_ratio")


def _run_tam_width(args) -> None:
    _print_sweep(tam_width_sweep(tuple(args.widths)), "tam_width_bits")


def _run_schedules(args) -> None:
    comparisons = schedule_exploration(power_budget=args.power_budget)
    rows = [{
        "schedule": comparison.schedule.name,
        "estimated_mcycles": comparison.estimated_cycles / 1e6,
        "simulated_mcycles": comparison.metrics.test_length_mcycles,
        "peak_power": comparison.metrics.peak_power,
    } for comparison in comparisons]
    print(format_table(rows, ["schedule", "estimated_mcycles",
                              "simulated_mcycles", "peak_power"]))


def _run_campaign(args) -> None:
    base = ScenarioSpec(
        name="base",
        patterns_per_core=args.patterns,
        memory_words=args.memory_words,
        seed=args.seed,
        schedules=tuple(args.schedules),
    )
    axes = {
        "core_count": [int(v) for v in args.core_counts],
        "tam_width_bits": [int(v) for v in args.tam_widths],
        "compression_ratio": [float(v) for v in args.compression_ratios],
        "power_budget": [float(v) for v in args.power_budgets],
    }
    campaign = campaign_from_axes(axes, base=base)
    run = campaign.run(workers=args.workers)
    print(format_campaign(run))
    if args.csv:
        run.write_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        run.write_json(args.json)
        print(f"wrote {args.json}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Test design space exploration experiments "
                    "(DATE 2009 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="reproduce Table I")
    table1.add_argument("--schedules", nargs="*", default=None,
                        help="subset of schedule names to simulate")
    table1.add_argument("--validate", action="store_true",
                        help="also print the schedule validation reports")
    table1.set_defaults(handler=_run_table1)

    speedup = subparsers.add_parser("speedup",
                                    help="TLM vs gate-level speed comparison")
    speedup.add_argument("--gate-cycles", type=int, default=400,
                         help="gate-level cycles to simulate for calibration")
    speedup.set_defaults(handler=_run_speedup)

    compression = subparsers.add_parser("sweep-compression",
                                        help="compression-ratio sweep")
    compression.add_argument("--ratios", nargs="*", type=float,
                             default=[1, 2, 5, 10, 50, 100, 1000])
    compression.set_defaults(handler=_run_compression)

    width = subparsers.add_parser("sweep-tam-width", help="TAM width sweep")
    width.add_argument("--widths", nargs="*", type=int, default=[8, 16, 32, 64])
    width.set_defaults(handler=_run_tam_width)

    schedules = subparsers.add_parser("schedules",
                                      help="hand-written vs generated schedules")
    schedules.add_argument("--power-budget", type=float, default=6.0)
    schedules.set_defaults(handler=_run_schedules)

    campaign = subparsers.add_parser(
        "campaign",
        help="parallel exploration campaign over generated SoC scenarios")
    campaign.add_argument("--core-counts", nargs="*", type=int,
                          default=[1, 2, 3],
                          help="synthetic core counts to sweep")
    campaign.add_argument("--tam-widths", nargs="*", type=int,
                          default=[16, 32],
                          help="TAM / system bus widths (bits) to sweep")
    campaign.add_argument("--compression-ratios", nargs="*", type=float,
                          default=[50.0],
                          help="test data compression ratios to sweep")
    campaign.add_argument("--power-budgets", nargs="*", type=float,
                          default=[6.0],
                          help="peak power budgets for the greedy scheduler")
    campaign.add_argument("--patterns", type=int, default=200,
                          help="external-scan patterns per core")
    campaign.add_argument("--memory-words", type=int, default=0,
                          help="embedded memory words (0: no memory test)")
    campaign.add_argument("--seed", type=int, default=1,
                          help="base seed of the scenario generator")
    campaign.add_argument("--schedules", nargs="*",
                          default=["sequential", "greedy"],
                          help="schedules simulated for every scenario")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes (1: run in-process)")
    campaign.add_argument("--csv", default=None,
                          help="write result rows to this CSV file")
    campaign.add_argument("--json", default=None,
                          help="write a JSON artifact to this file")
    campaign.set_defaults(handler=_run_campaign)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.handler(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
