"""Reproduction of Table I: the four test schedules of the JPEG encoder SoC."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.schedule.estimator import TestTimeEstimator
from repro.schedule.model import TestSchedule, TestTask
from repro.schedule.validation import ScheduleValidationReport, validate_schedule
from repro.soc.system import JpegSocTlm, SocConfiguration, TestRunMetrics
from repro.soc.testplan import (
    MEMORY,
    MEMORY_WORDS,
    build_core_descriptions,
    build_platform_parameters,
    build_test_schedules,
    build_test_tasks,
)

#: Values reported in the paper's Table I, for side-by-side comparison.
PAPER_TABLE1 = {
    "schedule_1": {"peak_tam_utilization": 0.67, "avg_tam_utilization": 0.45,
                   "test_length_mcycles": 281.0, "cpu_seconds": 418.0},
    "schedule_2": {"peak_tam_utilization": 0.67, "avg_tam_utilization": 0.58,
                   "test_length_mcycles": 184.0, "cpu_seconds": 271.0},
    "schedule_3": {"peak_tam_utilization": 0.80, "avg_tam_utilization": 0.47,
                   "test_length_mcycles": 263.0, "cpu_seconds": 390.0},
    "schedule_4": {"peak_tam_utilization": 1.00, "avg_tam_utilization": 0.64,
                   "test_length_mcycles": 167.0, "cpu_seconds": 261.0},
}


@dataclass
class ScenarioResult:
    """One row of the reproduced Table I plus the validation report."""

    metrics: TestRunMetrics
    validation: ScheduleValidationReport

    @property
    def name(self) -> str:
        return self.metrics.schedule_name

    def paper_row(self) -> Optional[Dict[str, float]]:
        return PAPER_TABLE1.get(self.name)


def run_scenario(schedule: TestSchedule, tasks: Mapping[str, TestTask],
                 config: Optional[SocConfiguration] = None) -> ScenarioResult:
    """Build a fresh SoC model, simulate *schedule* on it and validate it."""
    soc = JpegSocTlm(config)
    wall_start = time.perf_counter()
    metrics = soc.run_test_schedule(schedule, tasks)
    metrics.cpu_seconds = time.perf_counter() - wall_start

    estimator = TestTimeEstimator(
        build_core_descriptions(), build_platform_parameters(),
        memory_words={MEMORY: soc.config.memory_words},
    )
    validation = validate_schedule(
        schedule, tasks, estimator,
        simulated_cycles=metrics.test_length_cycles,
        simulated_peak_tam_utilization=metrics.peak_tam_utilization,
        simulated_avg_tam_utilization=metrics.avg_tam_utilization,
        simulated_peak_power=metrics.peak_power,
    )
    return ScenarioResult(metrics=metrics, validation=validation)


def run_table1(schedule_names: Optional[Sequence[str]] = None,
               config: Optional[SocConfiguration] = None) -> List[ScenarioResult]:
    """Reproduce Table I: simulate the paper's four test schedules.

    Returns one :class:`ScenarioResult` per schedule, in the paper's order.
    """
    tasks = build_test_tasks()
    schedules = build_test_schedules()
    names = list(schedule_names) if schedule_names is not None else sorted(schedules)
    results = []
    for name in names:
        results.append(run_scenario(schedules[name], tasks, config))
    return results


def table1_rows(results: Sequence[ScenarioResult]) -> List[Dict[str, object]]:
    """Rows (dicts) combining measured and paper values for reporting."""
    rows = []
    for result in results:
        row = result.metrics.as_row()
        paper = result.paper_row()
        if paper is not None:
            row.update({f"paper_{key}": value for key, value in paper.items()})
        rows.append(row)
    return rows
