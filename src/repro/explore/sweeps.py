"""Design-space sweeps enabled by the test-infrastructure TLM.

These are the exploration studies the paper motivates but does not tabulate:
how does the compressed processor test react to the compression ratio, how
does the TAM width shift the bottleneck, and how do machine-generated
schedules compare against the paper's hand-written ones.

Each sweep is now a thin *campaign definition*: it declares JPEG-kind
scenario specs along one axis and delegates execution to
:class:`~repro.explore.campaign.Campaign` (pass ``workers`` to fan a sweep
out to a worker pool).  The sweep return types are unchanged except that
``SweepPoint.metrics.execution`` is no longer populated: campaign outcomes
carry plain scalars so they can cross process boundaries.  Call
``JpegSocTlm.run_test_schedule`` directly when per-task execution detail is
needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.explore.campaign import Campaign, CampaignOutcome
from repro.explore.scenarios import COMPRESSED_ONLY, JPEG, ScenarioSpec, build_scenario
from repro.schedule.model import TestSchedule
from repro.soc.system import SocConfiguration, TestRunMetrics


@dataclass
class SweepPoint:
    """One simulated design point of a sweep."""

    parameter: str
    value: float
    metrics: TestRunMetrics

    def as_row(self) -> Dict[str, object]:
        row = {"parameter": self.parameter, "value": self.value}
        row.update(self.metrics.as_row())
        return row


def _jpeg_spec(name: str, config: SocConfiguration,
               schedules: Sequence[str], **overrides) -> ScenarioSpec:
    """A JPEG-kind scenario spec inheriting the full *config*."""
    parameters = {
        "tam_width_bits": config.tam_width_bits,
        "ate_width_bits": config.ate_width_bits,
        "compression_ratio": config.compression_ratio,
    }
    parameters.update(overrides)
    # Fields without a spec counterpart (clock period, memory size, burst
    # length, ...) travel as config overrides so a caller-supplied
    # configuration is reproduced in full by Scenario.build_soc().
    extra = tuple(sorted(
        (field, value) for field, value in config.__dict__.items()
        if field not in ("tam_width_bits", "ate_width_bits",
                         "compression_ratio")
    ))
    return ScenarioSpec(name=name, kind=JPEG, schedules=tuple(schedules),
                        config_overrides=extra, **parameters)


def _sweep_points(parameter: str, values: Sequence[float],
                  outcomes: Sequence[CampaignOutcome]) -> List[SweepPoint]:
    return [
        SweepPoint(parameter, float(value), outcome.to_metrics())
        for value, outcome in zip(values, outcomes)
    ]


def compression_ratio_sweep(ratios: Sequence[float] = (1, 2, 5, 10, 50, 100, 1000),
                            config: Optional[SocConfiguration] = None,
                            workers: int = 1) -> List[SweepPoint]:
    """Sweep the test data compression ratio of the processor test.

    The paper notes compression schemes of up to 1000x; this sweep shows where
    the bottleneck moves from the ATE link to the TAM and finally to the
    core-internal scan chains.
    """
    base = config or SocConfiguration()
    specs = [
        _jpeg_spec(f"compression_{float(ratio):g}", base,
                   schedules=(COMPRESSED_ONLY,),
                   compression_ratio=float(ratio))
        for ratio in ratios
    ]
    run = Campaign(specs).run(workers=workers)
    return _sweep_points("compression_ratio", list(ratios), run.outcomes)


def tam_width_sweep(widths: Sequence[int] = (8, 16, 32, 64),
                    schedule_name: str = "schedule_4",
                    workers: int = 1) -> List[SweepPoint]:
    """Sweep the width of the system bus / TAM for one schedule."""
    base = SocConfiguration()
    specs = [
        _jpeg_spec(f"tam_width_{int(width)}", base,
                   schedules=(schedule_name,),
                   tam_width_bits=int(width))
        for width in widths
    ]
    run = Campaign(specs).run(workers=workers)
    return _sweep_points("tam_width_bits", [float(w) for w in widths],
                         run.outcomes)


@dataclass
class ScheduleComparison:
    """Simulated comparison of hand-written and generated schedules."""

    schedule: TestSchedule
    estimated_cycles: int
    metrics: TestRunMetrics


def schedule_exploration(power_budget: float = 6.0,
                         workers: int = 1,
                         strategies: Sequence[str] = (),
                         ) -> List[ScheduleComparison]:
    """Compare the paper's schedules against automatically generated ones.

    A sequential baseline and a greedy concurrent schedule (built from the
    coarse estimates, under a peak power budget) are simulated alongside the
    paper's four hand-written schedules.  *strategies* appends further
    scheduler-strategy recipes (``"binpack"``, ``"anneal:steps=512"`` — see
    :mod:`repro.schedule.strategies`) to the comparison.
    """
    spec = _jpeg_spec(
        "schedule_exploration", SocConfiguration(),
        schedules=("generated_greedy", "generated_sequential",
                   "schedule_1", "schedule_2", "schedule_3", "schedule_4",
                   *strategies),
        power_budget=power_budget,
    )
    # The worker rebuilds the scenario from the spec (deterministically);
    # this local build only supplies the schedule objects for the comparison.
    scenario = build_scenario(spec)
    run = Campaign([spec]).run(workers=workers)
    return [
        ScheduleComparison(
            schedule=scenario.schedules[outcome.schedule],
            estimated_cycles=outcome.estimated_cycles,
            metrics=outcome.to_metrics(),
        )
        for outcome in run.outcomes
    ]
