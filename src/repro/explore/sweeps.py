"""Design-space sweeps enabled by the test-infrastructure TLM.

These are the exploration studies the paper motivates but does not tabulate:
how does the compressed processor test react to the compression ratio, how
does the TAM width shift the bottleneck, and how do machine-generated
schedules compare against the paper's hand-written ones.  Each sweep runs the
same simulation flow as the Table I reproduction, just with one parameter
varied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.schedule.estimator import TestTimeEstimator
from repro.schedule.model import TestSchedule
from repro.schedule.power import PowerModel
from repro.schedule.scheduler import greedy_concurrent_schedule, sequential_schedule
from repro.soc.system import JpegSocTlm, SocConfiguration, TestRunMetrics
from repro.soc.testplan import (
    MEMORY,
    build_core_descriptions,
    build_platform_parameters,
    build_test_schedules,
    build_test_tasks,
)


@dataclass
class SweepPoint:
    """One simulated design point of a sweep."""

    parameter: str
    value: float
    metrics: TestRunMetrics

    def as_row(self) -> Dict[str, object]:
        row = {"parameter": self.parameter, "value": self.value}
        row.update(self.metrics.as_row())
        return row


def _compressed_only_schedule() -> TestSchedule:
    """A schedule containing only the compressed processor test (test 3)."""
    return TestSchedule.sequential("compressed_only", ["t3_processor_compressed"])


def compression_ratio_sweep(ratios: Sequence[float] = (1, 2, 5, 10, 50, 100, 1000),
                            config: Optional[SocConfiguration] = None) -> List[SweepPoint]:
    """Sweep the test data compression ratio of the processor test.

    The paper notes compression schemes of up to 1000x; this sweep shows where
    the bottleneck moves from the ATE link to the TAM and finally to the
    core-internal scan chains.
    """
    tasks = build_test_tasks()
    points = []
    for ratio in ratios:
        point_config = config or SocConfiguration()
        point_config = SocConfiguration(**{**point_config.__dict__,
                                           "compression_ratio": float(ratio)})
        point_tasks = dict(tasks)
        task = point_tasks["t3_processor_compressed"]
        point_tasks["t3_processor_compressed"] = type(task)(
            name=task.name, kind=task.kind, core=task.core,
            pattern_count=task.pattern_count, compression_ratio=float(ratio),
            power=task.power, attributes=dict(task.attributes),
        )
        soc = JpegSocTlm(point_config)
        metrics = soc.run_test_schedule(_compressed_only_schedule(), point_tasks)
        points.append(SweepPoint("compression_ratio", float(ratio), metrics))
    return points


def tam_width_sweep(widths: Sequence[int] = (8, 16, 32, 64),
                    schedule_name: str = "schedule_4") -> List[SweepPoint]:
    """Sweep the width of the system bus / TAM for one schedule."""
    tasks = build_test_tasks()
    schedule = build_test_schedules()[schedule_name]
    points = []
    for width in widths:
        config = SocConfiguration(tam_width_bits=int(width))
        soc = JpegSocTlm(config)
        metrics = soc.run_test_schedule(schedule, tasks)
        points.append(SweepPoint("tam_width_bits", float(width), metrics))
    return points


@dataclass
class ScheduleComparison:
    """Simulated comparison of hand-written and generated schedules."""

    schedule: TestSchedule
    estimated_cycles: int
    metrics: TestRunMetrics


def schedule_exploration(power_budget: float = 6.0) -> List[ScheduleComparison]:
    """Compare the paper's schedules against automatically generated ones.

    A sequential baseline and a greedy concurrent schedule (built from the
    coarse estimates, under a peak power budget) are simulated alongside the
    paper's four hand-written schedules.
    """
    tasks = build_test_tasks()
    descriptions = build_core_descriptions()
    platform = build_platform_parameters()
    estimator = TestTimeEstimator(descriptions, platform,
                                  memory_words={MEMORY: SocConfiguration().memory_words})
    estimates = estimator.estimate_all(tasks)
    power_model = PowerModel(budget=power_budget)

    candidates: Dict[str, TestSchedule] = dict(build_test_schedules())
    candidates["generated_sequential"] = sequential_schedule(
        "generated_sequential", tasks,
        order=sorted(tasks, key=lambda name: estimates[name], reverse=True),
        description="auto-generated sequential baseline (longest first)",
    )
    candidates["generated_greedy"] = greedy_concurrent_schedule(
        "generated_greedy", tasks, estimates, power_model=power_model,
        description="auto-generated greedy concurrent schedule",
    )

    comparisons = []
    for name in sorted(candidates):
        schedule = candidates[name]
        soc = JpegSocTlm()
        metrics = soc.run_test_schedule(schedule, tasks)
        comparisons.append(ScheduleComparison(
            schedule=schedule,
            estimated_cycles=estimator.estimate_schedule_cycles(schedule, tasks),
            metrics=metrics,
        ))
    return comparisons
