"""Experiment runners reproducing the paper's evaluation.

* :mod:`repro.explore.experiments` -- Table I (the four test schedules)
* :mod:`repro.explore.speedup` -- the TLM vs RTL/gate-level simulation speed
  comparison quoted in Section IV
* :mod:`repro.explore.scenarios` -- the scenario grammar: synthetic SoC specs
  and the cross-product generator behind exploration campaigns
* :mod:`repro.explore.campaign` -- the campaign engine: scenarios x schedules
  on a worker pool with structured CSV/JSON result artifacts
* :mod:`repro.explore.adaptive` -- adaptive search on top of the campaign
  engine: successive halving over budgets with Pareto-front pruning, with
  round-boundary checkpoints and mid-search resume from JSON artifacts
* :mod:`repro.explore.distrib` -- the distribution subsystem: deterministic
  shard planning, per-host shard execution and provenance-validated artifact
  merging (merged == single-host, bitwise)
* :mod:`repro.explore.store` -- the columnar result store: typed numpy
  column chunks with schema/provenance metadata, streaming shard merge and
  streaming JSON/CSV writers that stay bitwise-identical to the in-memory
  artifact writers
* :mod:`repro.explore.coordinator` -- the live control plane: fair-share
  campaign queue, span leases over a localhost socket, heartbeats, work
  stealing and incremental streaming merge (coordinated == single-host,
  bitwise)
* :mod:`repro.explore.worker` -- the execution plane: the lease/execute/
  complete worker loop, over TCP or in process
* :mod:`repro.explore.sweeps` -- design-space sweeps (compression ratio, TAM
  width, schedule exploration), expressed as thin campaign definitions
* :mod:`repro.explore.report` -- plain-text table formatting
* :mod:`repro.explore.cli` -- the ``python -m repro.explore`` entry point

Artifact compatibility: campaign rows follow
:data:`~repro.explore.campaign.RESULT_COLUMNS` and are versioned by
:data:`~repro.explore.campaign.SCHEMA_VERSION` (currently 4); adaptive
artifacts append the provenance columns of :mod:`repro.explore.adaptive`,
versioned by :data:`~repro.explore.adaptive.ADAPTIVE_SCHEMA_VERSION`
(currently 2, resumable checkpoints); shard artifacts embed the campaign
schema plus a shard envelope versioned by
:data:`~repro.explore.distrib.DISTRIB_SCHEMA_VERSION`.
Consumers should key on these version fields, not on column positions.
"""

from repro.explore.adaptive import (
    ADAPTIVE_SCHEMA_VERSION,
    DEFAULT_OBJECTIVES,
    AdaptiveResult,
    AdaptiveRound,
    AdaptiveSearch,
    Objective,
    ParetoFront,
    adaptive_search_from_axes,
    dominates,
    pareto_front_mask,
    pareto_ranks,
    resume_search,
)
from repro.explore.campaign import (
    Campaign,
    CampaignJob,
    CampaignOutcome,
    CampaignRun,
    RESULT_COLUMNS,
    SCHEMA_VERSION,
    campaign_from_axes,
    execute_job,
    outcome_from_row,
    result_columns,
    run_jobs,
)
from repro.explore.coordinator import (
    COORDINATOR_SCHEMA_VERSION,
    Coordinator,
    CoordinatorClient,
    CoordinatorError,
    CoordinatorServer,
    SpanLease,
)
from repro.explore.distrib import (
    DISTRIB_SCHEMA_VERSION,
    CampaignShard,
    MergeError,
    MergePlan,
    ShardRun,
    load_artifact,
    merge_artifacts,
    merge_shard_documents,
    missing_shard_spans,
    plan_merge,
    plan_shards,
    replan_document,
    run_shard,
    shard_span,
    space_fingerprint,
    validate_shard_result,
    write_merged_csv,
    write_merged_json,
)
from repro.explore.experiments import ScenarioResult, run_table1
from repro.explore.report import (
    format_adaptive,
    format_campaign,
    format_coordinator_status,
    format_merged,
    format_shard,
    format_strategies,
    format_table,
    format_table1,
    format_worker_stats,
)
from repro.explore.scenarios import (
    Scenario,
    ScenarioGrid,
    ScenarioSpec,
    build_scenario,
    spec_from_dict,
    spec_to_dict,
)
from repro.explore.speedup import SpeedupResult, run_speed_comparison
from repro.explore.store import (
    STORE_SCHEMA_VERSION,
    ColumnarStore,
    IncrementalShardMerge,
    StoreError,
    merge_artifacts_to_store,
    merge_documents_to_store,
    store_adaptive_result,
    store_campaign_run,
    store_shard_run,
    write_document_csv,
    write_document_json,
)
from repro.explore.sweeps import (
    compression_ratio_sweep,
    tam_width_sweep,
    schedule_exploration,
)
from repro.explore.worker import CampaignWorker, InProcessClient

__all__ = [
    "ADAPTIVE_SCHEMA_VERSION",
    "AdaptiveResult",
    "AdaptiveRound",
    "AdaptiveSearch",
    "COORDINATOR_SCHEMA_VERSION",
    "Campaign",
    "CampaignJob",
    "CampaignOutcome",
    "CampaignRun",
    "CampaignShard",
    "CampaignWorker",
    "ColumnarStore",
    "Coordinator",
    "CoordinatorClient",
    "CoordinatorError",
    "CoordinatorServer",
    "DEFAULT_OBJECTIVES",
    "DISTRIB_SCHEMA_VERSION",
    "InProcessClient",
    "IncrementalShardMerge",
    "MergeError",
    "MergePlan",
    "Objective",
    "ParetoFront",
    "SpanLease",
    "RESULT_COLUMNS",
    "SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "Scenario",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "ShardRun",
    "SpeedupResult",
    "StoreError",
    "adaptive_search_from_axes",
    "build_scenario",
    "campaign_from_axes",
    "compression_ratio_sweep",
    "dominates",
    "execute_job",
    "format_adaptive",
    "format_campaign",
    "format_coordinator_status",
    "format_merged",
    "format_shard",
    "format_strategies",
    "format_table",
    "format_table1",
    "format_worker_stats",
    "load_artifact",
    "merge_artifacts",
    "merge_artifacts_to_store",
    "merge_documents_to_store",
    "merge_shard_documents",
    "missing_shard_spans",
    "outcome_from_row",
    "pareto_front_mask",
    "pareto_ranks",
    "plan_merge",
    "plan_shards",
    "replan_document",
    "result_columns",
    "resume_search",
    "run_jobs",
    "run_shard",
    "run_speed_comparison",
    "run_table1",
    "schedule_exploration",
    "shard_span",
    "space_fingerprint",
    "spec_from_dict",
    "spec_to_dict",
    "store_adaptive_result",
    "store_campaign_run",
    "store_shard_run",
    "tam_width_sweep",
    "validate_shard_result",
    "write_document_csv",
    "write_document_json",
    "write_merged_csv",
    "write_merged_json",
]
