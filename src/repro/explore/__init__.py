"""Experiment runners reproducing the paper's evaluation.

* :mod:`repro.explore.experiments` -- Table I (the four test schedules)
* :mod:`repro.explore.speedup` -- the TLM vs RTL/gate-level simulation speed
  comparison quoted in Section IV
* :mod:`repro.explore.scenarios` -- the scenario grammar: synthetic SoC specs
  and the cross-product generator behind exploration campaigns
* :mod:`repro.explore.campaign` -- the campaign engine: scenarios x schedules
  on a worker pool with structured CSV/JSON result artifacts
* :mod:`repro.explore.sweeps` -- design-space sweeps (compression ratio, TAM
  width, schedule exploration), expressed as thin campaign definitions
* :mod:`repro.explore.report` -- plain-text table formatting
"""

from repro.explore.campaign import (
    Campaign,
    CampaignJob,
    CampaignOutcome,
    CampaignRun,
    RESULT_COLUMNS,
    campaign_from_axes,
    execute_job,
)
from repro.explore.experiments import ScenarioResult, run_table1
from repro.explore.report import format_campaign, format_table, format_table1
from repro.explore.scenarios import (
    Scenario,
    ScenarioGrid,
    ScenarioSpec,
    build_scenario,
)
from repro.explore.speedup import SpeedupResult, run_speed_comparison
from repro.explore.sweeps import (
    compression_ratio_sweep,
    tam_width_sweep,
    schedule_exploration,
)

__all__ = [
    "Campaign",
    "CampaignJob",
    "CampaignOutcome",
    "CampaignRun",
    "RESULT_COLUMNS",
    "Scenario",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "SpeedupResult",
    "build_scenario",
    "campaign_from_axes",
    "compression_ratio_sweep",
    "execute_job",
    "format_campaign",
    "format_table",
    "format_table1",
    "run_speed_comparison",
    "run_table1",
    "schedule_exploration",
    "tam_width_sweep",
]
