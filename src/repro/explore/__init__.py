"""Experiment runners reproducing the paper's evaluation.

* :mod:`repro.explore.experiments` -- Table I (the four test schedules)
* :mod:`repro.explore.speedup` -- the TLM vs RTL/gate-level simulation speed
  comparison quoted in Section IV
* :mod:`repro.explore.sweeps` -- design-space sweeps (compression ratio, TAM
  width, schedule exploration) that the paper's methodology enables
* :mod:`repro.explore.report` -- plain-text table formatting
"""

from repro.explore.experiments import ScenarioResult, run_table1
from repro.explore.report import format_table, format_table1
from repro.explore.speedup import SpeedupResult, run_speed_comparison
from repro.explore.sweeps import (
    compression_ratio_sweep,
    tam_width_sweep,
    schedule_exploration,
)

__all__ = [
    "ScenarioResult",
    "SpeedupResult",
    "compression_ratio_sweep",
    "format_table",
    "format_table1",
    "run_speed_comparison",
    "run_table1",
    "schedule_exploration",
    "tam_width_sweep",
]
