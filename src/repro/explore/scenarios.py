"""Synthetic SoC scenario generation for exploration campaigns.

The paper's evaluation is a single hand-built SoC (the JPEG encoder).  The
methodology, however, is generative: wrappers, decompressors and schedules can
all be derived from core descriptions, so *test-infrastructure design-space
exploration* should scale to arbitrarily many SoC variants.  This module is
the scenario grammar for that:

* :class:`ScenarioSpec` — one point in the design space: core count, TAM/ATE
  widths, compression ratio, power budget, pattern volume, wrapper
  serial/parallel port widths, ATE vector-memory limit, seed.  Specs are
  frozen, hashable and picklable, so a campaign can ship them to worker
  processes.  Every non-structural spec field is one column of the campaign
  result schema (:data:`repro.explore.campaign.RESULT_COLUMNS`); adding a
  field therefore widens the schema and requires bumping
  :data:`repro.explore.campaign.SCHEMA_VERSION`.
* :func:`build_scenario` — expand a spec into a concrete :class:`Scenario`:
  deterministic synthetic core descriptions (seeded,
  :class:`~repro.rtl.generate.SyntheticCoreSpec`-style), test tasks, and
  machine-generated schedules.  ``kind="jpeg"`` scenarios map onto the
  paper's case study instead, which is how the original single-parameter
  sweeps are expressed as campaigns.
* :class:`ScenarioGrid` — the cross-product generator: axes of parameter
  values fanned out into a deterministic list of named, seeded specs.

Schedule generation is the pluggable strategy axis: every entry of
``ScenarioSpec.schedules`` that names a registered scheduler strategy
(:mod:`repro.schedule.strategies`) — plain (``"greedy"``) or parameterized
(``"anneal:steps=512,seed=9"``) — is materialized through the registry
against the scenario's tasks, estimates and power budget.  Entries are
canonicalized at spec construction, so equal recipes always hash, pickle and
serialize identically.  Entries that are *not* strategy specs refer to the
scenario's pre-built schedules (the paper's hand-written ``schedule_1`` ...
``schedule_4`` of ``jpeg`` scenarios).
"""

from __future__ import annotations

import itertools
import json
import math
import random
import zlib
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.dft.config_bus import DEFAULT_PROTOCOL_OVERHEAD_CYCLES
from repro.dft.ctl import CoreTestDescription
from repro.memory.march import MATS_PLUS
from repro.rtl.generate import SyntheticCoreSpec
from repro.schedule.estimator import PlatformParameters, TestTimeEstimator
from repro.schedule.model import TestKind, TestSchedule, TestTask
from repro.schedule.power import PowerModel
from repro.schedule.strategies import (
    ScheduleStrategySpec,
    build_strategy_schedule,
    canonical_schedule_name,
    canonical_schedule_names,
    get_strategy,
)
from repro.soc.system import GeneratedSocTlm, JpegSocTlm, SocConfiguration
from repro.soc.testplan import (
    MEMORY,
    build_core_descriptions,
    build_platform_parameters,
    build_test_schedules,
    build_test_tasks,
)

#: Scenario kinds understood by :func:`build_scenario`.
GENERATED = "generated"
JPEG = "jpeg"

#: Name of the embedded memory core in generated scenarios.
SCENARIO_MEMORY = "mem"

#: Schedule of the JPEG scenario that runs only the compressed processor test
#: (the design point of the compression-ratio sweep).
COMPRESSED_ONLY = "compressed_only"


@dataclass(frozen=True)
class ScenarioSpec:
    """One SoC scenario of a campaign (a point in the design space).

    A spec is pure data: expanding it with :func:`build_scenario` is
    deterministic, so the same spec produces bitwise-identical simulation
    results in any process.
    """

    name: str
    kind: str = GENERATED
    #: Number of synthetic logic cores (``generated`` scenarios only).
    core_count: int = 3
    tam_width_bits: int = 32
    ate_width_bits: int = 16
    compression_ratio: float = 50.0
    #: Peak power budget handed to the greedy scheduler.
    power_budget: float = 6.0
    #: External-scan pattern volume per core (BIST uses a multiple of it).
    patterns_per_core: int = 200
    #: Words of the embedded memory core (0 disables the memory test).
    memory_words: int = 0
    #: Wrapper parallel-port (WPI/WPO) width in bits (0: one lane per chain).
    wrapper_parallel_width_bits: int = 0
    #: Wrapper serial-port / configuration-ring width in bits.
    wrapper_serial_width_bits: int = 1
    #: ATE stimulus vector memory in link words (0: unlimited buffer).
    ate_vector_memory_words: int = 0
    seed: int = 1
    #: The schedules this scenario contributes to the campaign: scheduler
    #: strategy specs (``"greedy"``, ``"anneal:steps=512"`` — canonicalized
    #: on construction, built through the strategy registry) and/or names of
    #: the scenario's pre-built schedules (``"schedule_1"`` on jpeg specs).
    schedules: Tuple[str, ...] = ("sequential", "greedy")
    #: Extra :class:`~repro.soc.system.SocConfiguration` fields as sorted
    #: ``(name, value)`` pairs (kept as a tuple so the spec stays hashable).
    #: The spec's own width/ratio fields take precedence.
    config_overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if self.kind not in (GENERATED, JPEG):
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if self.kind == GENERATED and self.core_count < 1:
            raise ValueError("a generated scenario needs at least one core")
        if self.tam_width_bits <= 0 or self.ate_width_bits <= 0:
            raise ValueError("TAM and ATE widths must be positive")
        if self.compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1")
        if self.patterns_per_core <= 0:
            raise ValueError("patterns_per_core must be positive")
        if self.memory_words < 0:
            raise ValueError("memory_words cannot be negative")
        if self.wrapper_parallel_width_bits < 0:
            raise ValueError("wrapper_parallel_width_bits cannot be negative")
        if self.wrapper_serial_width_bits < 1:
            raise ValueError("wrapper_serial_width_bits must be >= 1")
        if self.ate_vector_memory_words < 0:
            raise ValueError("ate_vector_memory_words cannot be negative")
        if not self.schedules:
            raise ValueError("a scenario needs at least one schedule")
        # Canonicalize strategy spec strings (and fail fast on malformed
        # ones) so equal schedule recipes always compare, hash and serialize
        # equal, dropping duplicate recipes; non-strategy names pass through
        # untouched.
        object.__setattr__(self, "schedules",
                           canonical_schedule_names(self.schedules))

    def as_dict(self) -> Dict[str, object]:
        """The spec as a flat dict (column values of a campaign result row)."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name not in ("schedules", "config_overrides")}


def spec_to_dict(spec: ScenarioSpec, validate: bool = True) -> Dict[str, object]:
    """The *complete* spec as a JSON-serializable dict.

    Unlike :meth:`ScenarioSpec.as_dict` (the result-row view, which drops the
    structural ``schedules``/``config_overrides`` fields), this is a lossless
    serialization: :func:`spec_from_dict` reconstructs an equal spec.  Shard
    specs and resumable adaptive artifacts ship specs across hosts this way,
    so every field value must survive a JSON round trip — specs carrying
    non-JSON ``config_overrides`` values (e.g. ``SimTime``) are rejected with
    a clear error instead of failing deep inside ``json.dump``.  Callers that
    serialize the result themselves right away (and can report the error at
    that point) pass ``validate=False`` to skip the probe dump.
    """
    document = {f.name: getattr(spec, f.name) for f in fields(spec)}
    document["schedules"] = list(spec.schedules)
    document["config_overrides"] = [[name, value]
                                    for name, value in spec.config_overrides]
    if validate:
        try:
            json.dumps(document)
        except TypeError as error:
            raise ValueError(
                f"scenario spec {spec.name!r} cannot be serialized to JSON "
                f"(a config_overrides value is not JSON-compatible): {error}"
            ) from error
    return document


def _rehydrate_override(value):
    """Undo JSON's tuple→list coercion, recursively.

    Spec fields must stay hashable (specs are dict keys in the campaign
    cache and the adaptive memo), so a sequence-valued config override was
    necessarily a tuple before serialization — rebuild it as one.
    """
    if isinstance(value, list):
        return tuple(_rehydrate_override(item) for item in value)
    return value


def spec_from_dict(document: Mapping[str, object]) -> ScenarioSpec:
    """Reconstruct a :class:`ScenarioSpec` written by :func:`spec_to_dict`."""
    data = dict(document)
    valid = {f.name for f in fields(ScenarioSpec)}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ValueError(f"unknown scenario spec fields: {unknown}")
    if "schedules" in data:
        data["schedules"] = tuple(data["schedules"])
    if "config_overrides" in data:
        data["config_overrides"] = tuple(
            (name, _rehydrate_override(value))
            for name, value in data["config_overrides"])
    try:
        return ScenarioSpec(**data)
    except TypeError as error:
        # A required field is missing (or a field value has the wrong shape):
        # surface it as an invalid-document error, not a constructor crash.
        raise ValueError(f"incomplete scenario spec document: {error}") from error


@dataclass
class Scenario:
    """A fully expanded scenario: descriptions, tasks, schedules, estimator."""

    spec: ScenarioSpec
    descriptions: Dict[str, CoreTestDescription]
    tasks: Dict[str, TestTask]
    schedules: Dict[str, TestSchedule]
    memory_words: Dict[str, int] = field(default_factory=dict)
    estimator: Optional[TestTimeEstimator] = None
    #: The power model scheduler strategies build against (the spec's budget).
    power_model: Optional[PowerModel] = None

    def schedule_for(self, name: str) -> TestSchedule:
        """Resolve a schedule by name, materializing strategies on demand.

        Pre-built schedules (the spec's own entries, a jpeg scenario's
        hand-written plans) are served from :attr:`schedules`; any other
        name that parses as a registered scheduler strategy is built against
        the scenario's tasks, estimates and power model — deterministically,
        so lazily built schedules equal eagerly built ones — and memoized.
        Unknown names raise :class:`KeyError`.
        """
        canonical = canonical_schedule_name(name)
        schedule = self.schedules.get(canonical)
        if schedule is not None:
            return schedule
        if (ScheduleStrategySpec.parse(canonical) is not None
                and self.estimator is not None):
            schedule = build_strategy_schedule(
                canonical, self.tasks, self.estimator.estimate_all(self.tasks),
                power_model=self.power_model)
            self.schedules[canonical] = schedule
            return schedule
        raise KeyError(
            f"scenario {self.spec.name!r} has no schedule {name!r}; "
            f"available: {sorted(self.schedules)}"
        )

    def selected_schedules(self) -> List[TestSchedule]:
        """The schedules named by the spec, in spec order."""
        selected, missing = [], []
        for name in self.spec.schedules:
            try:
                selected.append(self.schedule_for(name))
            except KeyError:
                missing.append(name)
        if missing:
            raise KeyError(
                f"scenario {self.spec.name!r} has no schedule(s) {missing!r}; "
                f"available: {sorted(self.schedules)}"
            )
        return selected

    def estimated_cycles(self, schedule_name: str) -> int:
        """Coarse (estimator) makespan of one of the scenario's schedules."""
        if self.estimator is None:
            return 0
        return self.estimator.estimate_schedule_cycles(
            self.schedule_for(schedule_name), self.tasks
        )

    def build_soc(self):
        """Instantiate the TLM for this scenario (fresh simulator each call)."""
        spec = self.spec
        parameters = dict(spec.config_overrides)
        parameters.update(
            tam_width_bits=spec.tam_width_bits,
            ate_width_bits=spec.ate_width_bits,
            compression_ratio=spec.compression_ratio,
            wrapper_parallel_width_bits=spec.wrapper_parallel_width_bits,
            wrapper_serial_width_bits=spec.wrapper_serial_width_bits,
            ate_vector_memory_words=spec.ate_vector_memory_words,
        )
        config = SocConfiguration(**parameters)
        if spec.kind == JPEG:
            return JpegSocTlm(config)
        return GeneratedSocTlm(
            config=config,
            descriptions=self.descriptions,
            memory_words=self.memory_words,
            tasks=self.tasks,
            schedules=self.schedules,
            name=spec.name,
        )


def scenario_platform(spec: ScenarioSpec) -> PlatformParameters:
    """Platform bandwidths seen by the coarse estimator for *spec*."""
    base = build_platform_parameters()
    # Mirror ConfigurationScanBus: a wider serial port speeds up only the
    # ring shift; the capture/update protocol overhead stays constant.
    overhead = min(DEFAULT_PROTOCOL_OVERHEAD_CYCLES, base.configuration_cycles)
    shift_cycles = base.configuration_cycles - overhead
    configuration_cycles = (
        math.ceil(shift_cycles / spec.wrapper_serial_width_bits) + overhead)
    return replace(base, tam_width_bits=spec.tam_width_bits,
                   ate_width_bits=spec.ate_width_bits,
                   configuration_cycles=configuration_cycles,
                   wrapper_parallel_width_bits=spec.wrapper_parallel_width_bits,
                   ate_vector_memory_words=spec.ate_vector_memory_words)


def _core_rng(spec: ScenarioSpec, index: int) -> random.Random:
    # One independent stream per core so adding a core does not reshuffle the
    # others (campaigns sweeping core_count stay comparable point by point).
    return random.Random((spec.seed * 1_000_003 + index) & 0x7FFF_FFFF)


def generate_core_descriptions(spec: ScenarioSpec) -> Dict[str, CoreTestDescription]:
    """Deterministic synthetic core descriptions for a generated scenario.

    The sizing mirrors :class:`~repro.rtl.generate.SyntheticCoreSpec`: each
    core gets a seeded scan configuration (chain count and length), an
    optional logic BIST engine and an optional decompressor interface
    (internal chains), plus calibrated power weights.
    """
    descriptions: Dict[str, CoreTestDescription] = {}
    for index in range(spec.core_count):
        rng = _core_rng(spec, index)
        chain_count = rng.choice((4, 8, 16))
        chain_length = rng.randint(24, 64)
        has_logic_bist = rng.random() < 0.5
        has_decompressor = rng.random() < 0.4
        internal_chains = chain_count * rng.choice((4, 8)) if has_decompressor else None
        test_power = round(rng.uniform(0.5, 3.0), 2)
        core_name = f"core{index}"
        description = CoreTestDescription.describe(
            core_name,
            chain_count=chain_count,
            scan_cells=chain_count * chain_length,
            has_logic_bist=has_logic_bist,
            internal_chain_count=internal_chains,
            test_power=test_power,
            idle_power=round(test_power / 10.0, 3),
        )
        description.notes.append(
            f"synthetic core (spec seed {spec.seed}, core index {index}); "
            f"structural stand-in generated like "
            f"{SyntheticCoreSpec.__name__}(flip_flops={chain_count * chain_length})"
        )
        descriptions[core_name] = description
    return descriptions


def generate_tasks(spec: ScenarioSpec,
                   descriptions: Mapping[str, CoreTestDescription]) -> Dict[str, TestTask]:
    """The test-task set of a generated scenario.

    Every core gets an external scan test; cores with logic BIST additionally
    get a BIST run (cheap in TAM bandwidth, so a larger pattern volume), and
    cores behind a decompressor get a compressed deterministic test at the
    scenario's compression ratio.  A non-zero ``memory_words`` adds a
    controller-driven march test of the embedded memory.
    """
    tasks: Dict[str, TestTask] = {}
    for core_name, description in descriptions.items():
        power = description.test_power
        if description.has_logic_bist:
            tasks[f"t_{core_name}_bist"] = TestTask(
                name=f"t_{core_name}_bist", kind=TestKind.LOGIC_BIST,
                core=core_name, pattern_count=spec.patterns_per_core * 4,
                power=power,
            )
        tasks[f"t_{core_name}_scan"] = TestTask(
            name=f"t_{core_name}_scan", kind=TestKind.EXTERNAL_SCAN,
            core=core_name, pattern_count=spec.patterns_per_core,
            power=round(power * 0.9, 3),
        )
        if description.internal_chain_count:
            tasks[f"t_{core_name}_compressed"] = TestTask(
                name=f"t_{core_name}_compressed",
                kind=TestKind.EXTERNAL_SCAN_COMPRESSED, core=core_name,
                pattern_count=spec.patterns_per_core,
                compression_ratio=spec.compression_ratio,
                power=round(power * 0.9, 3),
            )
    if spec.memory_words:
        tasks[f"t_{SCENARIO_MEMORY}_bist"] = TestTask(
            name=f"t_{SCENARIO_MEMORY}_bist",
            kind=TestKind.MEMORY_BIST_CONTROLLER, core=SCENARIO_MEMORY,
            march=MATS_PLUS, pattern_backgrounds=1, power=1.5,
        )
    return tasks


def generate_schedules(spec: ScenarioSpec, tasks: Mapping[str, TestTask],
                       estimator: TestTimeEstimator) -> Dict[str, TestSchedule]:
    """Build the spec's strategy schedules through the strategy registry.

    Every ``spec.schedules`` entry that parses as a registered scheduler
    strategy is materialized against the scenario's tasks, coarse estimates
    and power budget, keyed by its canonical spec string.  Entries that are
    not strategy specs are left to the scenario's pre-built registry (and
    surface as :class:`KeyError` from :meth:`Scenario.schedule_for` when
    nothing provides them).
    """
    estimates = estimator.estimate_all(tasks)
    power_model = PowerModel(budget=spec.power_budget)
    schedules: Dict[str, TestSchedule] = {}
    for entry in spec.schedules:
        if entry in schedules or ScheduleStrategySpec.parse(entry) is None:
            continue
        schedules[entry] = build_strategy_schedule(
            entry, tasks, estimates, power_model=power_model)
    return schedules


def _build_generated_scenario(spec: ScenarioSpec) -> Scenario:
    descriptions = generate_core_descriptions(spec)
    tasks = generate_tasks(spec, descriptions)
    memory_words = ({SCENARIO_MEMORY: spec.memory_words}
                    if spec.memory_words else {})
    estimator = TestTimeEstimator(descriptions, scenario_platform(spec),
                                  memory_words=memory_words)
    schedules = generate_schedules(spec, tasks, estimator)
    return Scenario(spec=spec, descriptions=descriptions, tasks=tasks,
                    schedules=schedules, memory_words=memory_words,
                    estimator=estimator,
                    power_model=PowerModel(budget=spec.power_budget))


def _build_jpeg_scenario(spec: ScenarioSpec) -> Scenario:
    tasks = build_test_tasks()
    # The compressed processor test follows the scenario's compression ratio,
    # exactly as the original compression-ratio sweep varied it.
    compressed = tasks["t3_processor_compressed"]
    tasks["t3_processor_compressed"] = replace(
        compressed, compression_ratio=float(spec.compression_ratio),
        attributes=dict(compressed.attributes),
    )
    descriptions = build_core_descriptions()
    # The estimator must see the same memory size the simulation uses, which
    # a caller may have tuned through the config overrides.
    overrides = dict(spec.config_overrides)
    memory_words = {MEMORY: int(overrides.get("memory_words",
                                              SocConfiguration().memory_words))}
    estimator = TestTimeEstimator(descriptions, scenario_platform(spec),
                                  memory_words=memory_words)
    estimates = estimator.estimate_all(tasks)
    power_model = PowerModel(budget=spec.power_budget)

    schedules = dict(build_test_schedules())
    schedules[COMPRESSED_ONLY] = TestSchedule.sequential(
        COMPRESSED_ONLY, ["t3_processor_compressed"],
        description="only the compressed processor test (sweep design point)",
    )
    # Historical aliases of the default-parameter strategies over the paper's
    # task set (pre-registry callers select them by these names).
    schedules["generated_sequential"] = get_strategy("sequential").build(
        tasks, estimates, power_model=power_model, name="generated_sequential")
    schedules["generated_greedy"] = get_strategy("greedy").build(
        tasks, estimates, power_model=power_model, name="generated_greedy")
    # Strategy entries of the spec (e.g. "binpack:fit=worst") are built
    # eagerly like generated scenarios do; hand-written names are already in.
    for entry in spec.schedules:
        if entry in schedules or ScheduleStrategySpec.parse(entry) is None:
            continue
        schedules[entry] = build_strategy_schedule(
            entry, tasks, estimates, power_model=power_model)
    return Scenario(spec=spec, descriptions=descriptions, tasks=tasks,
                    schedules=schedules, memory_words=memory_words,
                    estimator=estimator, power_model=power_model)


def build_scenario(spec: ScenarioSpec) -> Scenario:
    """Expand *spec* into a concrete, simulatable :class:`Scenario`."""
    if spec.kind == JPEG:
        return _build_jpeg_scenario(spec)
    return _build_generated_scenario(spec)


def derive_seed(base_seed: int, token: str) -> int:
    """A deterministic, process-independent seed for one grid point."""
    return (base_seed * 0x9E37 + zlib.crc32(token.encode("utf-8"))) & 0x7FFF_FFFF


class ScenarioGrid:
    """Cross-product scenario generator.

    *axes* maps :class:`ScenarioSpec` field names to the values to sweep; the
    grid is the full cross product in axis insertion order.  Every grid point
    gets a stable name (prefix + index + axis values) and a deterministic seed
    derived from the base seed and the axis assignment, so re-generating the
    grid — in any process — yields identical specs.
    """

    def __init__(self, axes: Mapping[str, Sequence], base: Optional[ScenarioSpec] = None,
                 name_prefix: str = "scenario"):
        self.axes = {name: list(values) for name, values in axes.items()}
        self.base = base or ScenarioSpec(name="base")
        self.name_prefix = name_prefix
        valid = {f.name for f in fields(ScenarioSpec)}
        unknown = sorted(set(self.axes) - valid)
        if unknown:
            raise ValueError(f"unknown scenario axes: {unknown}")
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def specs(self) -> List[ScenarioSpec]:
        """All grid points, deterministically named and seeded."""
        axis_names = list(self.axes)
        specs: List[ScenarioSpec] = []
        for index, combo in enumerate(itertools.product(*self.axes.values())):
            assignment = dict(zip(axis_names, combo))
            token = ",".join(f"{name}={assignment[name]!r}"
                             for name in sorted(assignment))
            name = f"{self.name_prefix}_{index:04d}"
            if "name" not in assignment:
                assignment["name"] = name
            if "seed" not in assignment:
                assignment["seed"] = derive_seed(self.base.seed, token)
            specs.append(replace(self.base, **assignment))
        return specs

    def __iter__(self) -> Iterable[ScenarioSpec]:
        return iter(self.specs())

    def __repr__(self):
        axes = ", ".join(f"{name}x{len(values)}"
                         for name, values in self.axes.items())
        return f"ScenarioGrid({axes or 'empty'}, base={self.base.name!r})"
