"""Appendable columnar result store with streaming artifact writers.

The campaign/adaptive/merge paths of :mod:`repro.explore` historically
materialized every result row as a Python dict (``merge_shard_documents``
concatenates complete ``rows`` lists in memory) — the ROADMAP names that the
bottleneck on the way to millions-of-rows campaigns.  This module is the
storage substrate underneath those paths:

* :class:`ColumnarStore` — a directory of typed numpy column blocks
  (``chunk-NNNNNN.npz``, one array per column) plus a ``manifest.json``
  carrying the result schema (``schema_version`` +
  :func:`~repro.explore.campaign.result_columns` column list), free-form
  provenance ``metadata`` and the *document header* — the exact key prefix of
  the JSON artifact the rows belong to.  Rows are appended in bounded
  buffers and flushed as typed chunks; readers stream chunk by chunk, so
  neither writing nor reading ever holds the full row set.
* :func:`store_campaign_run` / :func:`store_shard_run` /
  :func:`store_adaptive_result` — persist the existing result objects.
* :func:`merge_artifacts_to_store` — the streaming shard merge: validate
  every artifact through :func:`repro.explore.distrib.plan_merge` first
  (headers only), then re-read one shard at a time, appending its rows to
  the store.  Peak memory is one shard plus one chunk buffer, regardless of
  how many shards merge.
* :func:`write_document_json` / :func:`write_document_csv` — stream a
  store back out as a JSON/CSV artifact.  The JSON writer reproduces
  ``json.dump(document, indent=2, sort_keys=False)`` byte for byte, so a
  store-backed ``merge --store`` artifact is **bitwise identical** to
  ``CampaignRun.write_json(deterministic=True)`` of the monolithic run —
  the same contract :func:`~repro.explore.distrib.merge_shard_documents`
  honours, extended to the streaming path (pinned by ``tests/explore/
  test_store.py`` and the CI shard-smoke ``cmp`` step).

Column dtypes are *schema-typed*, not inferred: every known result column
(:data:`repro.explore.campaign.RESULT_COLUMNS` plus the adaptive provenance
columns) has a declared int64/float64/bool/str kind, so values survive the
npz round trip with their JSON types intact (an int column never comes back
``1.0``).  Unknown columns fall back to numpy's inference and are rejected
when it produces an ``object`` array.

The on-disk layout itself is versioned (``store_schema_version`` =
:data:`STORE_SCHEMA_VERSION`) independently of the row schema it carries.
"""

from __future__ import annotations

import csv
import io
import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union,
)

import numpy as np

from repro.explore.campaign import (
    RESULT_COLUMNS,
    SCHEMA_VERSION,
    result_columns,
)
from repro.explore.distrib import (
    MergeError,
    load_artifact,
    plan_merge,
    validate_shard_result,
)
from repro.explore.metrics import DRAIN_ROW_BUCKETS

#: Version of the on-disk store layout (manifest + chunk files).  Independent
#: of the row schema (``schema_version``) the store carries.
STORE_SCHEMA_VERSION = 1

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Default rows per column chunk: large enough that per-chunk overhead
#: (file open, npz header) amortizes, small enough that a chunk buffer stays
#: a few megabytes even with every column present.
DEFAULT_CHUNK_ROWS = 8192

_STR_COLUMNS = ("scenario", "kind", "schedule", "strategy", "strategy_params")
_FLOAT_COLUMNS = ("compression_ratio", "power_budget", "test_length_mcycles",
                  "peak_tam_utilization", "avg_tam_utilization", "peak_power",
                  "avg_power", "cpu_seconds", "budget", "surrogate_peak_power")
_BOOL_COLUMNS = ("survivor", "race_stopped")

#: Declared dtype kind per known column ("int"/"float"/"str"/"bool").  Every
#: campaign column and adaptive provenance column is covered; ints stay
#: int64 so JSON artifacts regenerated from a store keep integer literals.
COLUMN_KINDS: Dict[str, str] = {
    **{column: "int"
       for column in RESULT_COLUMNS + ("round", "surrogate_cycles")},
    **{column: "str" for column in _STR_COLUMNS},
    **{column: "float" for column in _FLOAT_COLUMNS},
    **{column: "bool" for column in _BOOL_COLUMNS},
}

_KIND_DTYPES = {"int": np.dtype(np.int64), "float": np.dtype(np.float64),
                "bool": np.dtype(bool)}


class StoreError(ValueError):
    """A store directory is missing, malformed or misused."""


def _column_array(column: str, values: Sequence[object]) -> np.ndarray:
    """One column buffer as a typed numpy array (schema-typed dtypes).

    Already-typed arrays (a decoded shard block's columns) pass straight
    through — ``np.asarray`` with a matching dtype is a no-copy view, and
    the str branch skips its per-value conversion entirely.
    """
    kind = COLUMN_KINDS.get(column)
    if kind == "str":
        if isinstance(values, np.ndarray) and values.dtype.kind == "U":
            return values
        return np.asarray([str(value) for value in values], dtype=np.str_)
    if kind in _KIND_DTYPES:
        return np.asarray(values, dtype=_KIND_DTYPES[kind])
    array = np.asarray(values)
    if array.dtype == object:
        raise StoreError(
            f"column {column!r} holds mixed/unsupported values; only "
            f"int/float/bool/str columns can be stored"
        )
    if array.dtype.kind == "U":
        return array
    if array.dtype.kind in "iu":
        return array.astype(np.int64)
    if array.dtype.kind == "f":
        return array.astype(np.float64)
    if array.dtype.kind == "b":
        return array
    raise StoreError(f"column {column!r} has unsupported dtype {array.dtype}")


class ColumnarStore:
    """An appendable directory of typed numpy column chunks.

    Create with :meth:`create` (write mode: :meth:`append_row` /
    :meth:`append_rows` / :meth:`append_columns`, then :meth:`close` — or use
    the instance as a context manager), reopen with :meth:`open` (read mode).
    Readers stream: :meth:`iter_column_chunks` yields one column mapping per
    chunk, :meth:`iter_rows` re-materializes dict rows with native Python
    scalars (``.tolist()``), which is what keeps regenerated JSON/CSV
    artifacts bitwise identical to the dict-of-lists writers.
    """

    def __init__(self, path: Path, columns: Sequence[str],
                 schema_version: int, document_header: Mapping[str, object],
                 metadata: Mapping[str, object], chunk_rows: int,
                 writable: bool,
                 chunks: Optional[List[str]] = None,
                 chunk_row_counts: Optional[List[int]] = None,
                 row_count: int = 0):
        self.path = Path(path)
        self._columns: Tuple[str, ...] = tuple(columns)
        self._schema_version = int(schema_version)
        self._document_header = dict(document_header)
        self._metadata = dict(metadata)
        self._chunk_rows = int(chunk_rows)
        self._writable = writable
        self._chunks: List[str] = list(chunks or [])
        self._chunk_row_counts: List[int] = list(chunk_row_counts or [])
        self._row_count = int(row_count)
        self._buffer: List[List[object]] = [[] for _ in self._columns]
        # Typed column blocks awaiting coalescing into full-size chunks
        # (append_columns buffers here; _drain_segments writes them out).
        self._segments: List[Dict[str, np.ndarray]] = []
        self._segment_rows = 0

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def create(cls, path, columns: Sequence[str],
               schema_version: int = SCHEMA_VERSION,
               document_header: Optional[Mapping[str, object]] = None,
               metadata: Optional[Mapping[str, object]] = None,
               chunk_rows: int = DEFAULT_CHUNK_ROWS) -> "ColumnarStore":
        """Create (or atomically replace) a store directory for writing."""
        if chunk_rows < 1:
            raise StoreError("chunk_rows must be >= 1")
        if not columns:
            raise StoreError("a store needs at least one column")
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if path.exists():
            if not path.is_dir():
                raise StoreError(f"{path} exists and is not a directory")
            if manifest_path.exists():
                # An existing store: drop its chunks so the rewrite cannot
                # leave stale blocks behind a fresh manifest.
                old = json.loads(manifest_path.read_text())
                for name in old.get("chunks", []):
                    chunk = path / name
                    if chunk.exists():
                        chunk.unlink()
                manifest_path.unlink()
            elif any(path.iterdir()):
                raise StoreError(
                    f"{path} exists, is not empty and carries no "
                    f"{MANIFEST_NAME} — refusing to overwrite")
        else:
            path.mkdir(parents=True)
        return cls(path, columns=columns, schema_version=schema_version,
                   document_header=document_header or {},
                   metadata=metadata or {}, chunk_rows=chunk_rows,
                   writable=True)

    @classmethod
    def open(cls, path) -> "ColumnarStore":
        """Open an existing store directory for streaming reads."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"{path} is not a columnar store "
                             f"(no {MANIFEST_NAME})")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("store_schema_version")
        if version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"{path} has store_schema_version={version!r}, expected "
                f"{STORE_SCHEMA_VERSION}")
        return cls(path, columns=manifest["columns"],
                   schema_version=manifest["schema_version"],
                   document_header=manifest.get("document_header", {}),
                   metadata=manifest.get("metadata", {}),
                   chunk_rows=manifest.get("chunk_rows", DEFAULT_CHUNK_ROWS),
                   writable=False,
                   chunks=manifest["chunks"],
                   chunk_row_counts=manifest["chunk_row_counts"],
                   row_count=manifest["row_count"])

    def __enter__(self) -> "ColumnarStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    # -- introspection ------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def schema_version(self) -> int:
        return self._schema_version

    @property
    def row_count(self) -> int:
        if not self._writable:
            return self._row_count
        return self._row_count + len(self._buffer[0]) + self._segment_rows

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def document_header(self) -> Dict[str, object]:
        return dict(self._document_header)

    @property
    def metadata(self) -> Dict[str, object]:
        return dict(self._metadata)

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self):
        return (f"ColumnarStore({str(self.path)!r}, {self.row_count} rows in "
                f"{self.chunk_count} chunk(s), "
                f"{len(self._columns)} columns)")

    # -- writing ------------------------------------------------------------
    def _require_writable(self) -> None:
        if not self._writable:
            raise StoreError(f"{self.path} is not open for writing")

    def append_row(self, row: Mapping[str, object]) -> None:
        """Buffer one dict row (must cover every store column)."""
        self._require_writable()
        try:
            for buffer, column in zip(self._buffer, self._columns):
                buffer.append(row[column])
        except KeyError as error:
            raise StoreError(f"row is missing column {error.args[0]!r}")
        if len(self._buffer[0]) >= self._chunk_rows:
            self.flush()

    def append_rows(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.append_row(row)

    def append_columns(self, columns: Mapping[str, Sequence[object]]) -> None:
        """Append a block of whole columns (the vectorized fast path).

        Blocks are typed immediately but *coalesced* before hitting disk:
        consecutive blocks accumulate until ``chunk_rows`` rows are pending,
        then drain as full-size chunks.  Many small blocks — the streaming
        merge appending one shard at a time, or the coordinator ingesting
        decoded completion payloads — therefore cost one npz write per
        ``chunk_rows`` rows instead of one per block.
        """
        self._require_writable()
        missing = [c for c in self._columns if c not in columns]
        if missing:
            raise StoreError(f"column block is missing column(s) {missing}")
        lengths = {len(columns[c]) for c in self._columns}
        if len(lengths) > 1:
            raise StoreError(f"column lengths disagree: {sorted(lengths)}")
        length = lengths.pop()
        if length == 0:
            return
        self._materialize_buffer()
        self._segments.append({c: _column_array(c, columns[c])
                               for c in self._columns})
        self._segment_rows += length
        if self._segment_rows >= self._chunk_rows:
            self._drain_segments(final=False)

    def _materialize_buffer(self) -> None:
        """Convert buffered dict-rows into a typed segment (keeps append_row
        and append_columns interleavings in row order)."""
        buffered = len(self._buffer[0])
        if not buffered:
            return
        self._segments.append({column: _column_array(column, buffer)
                               for column, buffer in zip(self._columns,
                                                         self._buffer)})
        self._segment_rows += buffered
        self._buffer = [[] for _ in self._columns]

    def _drain_segments(self, final: bool) -> None:
        """Write pending segments as chunks; keep a sub-chunk remainder
        buffered unless *final*."""
        total = self._segment_rows
        writable = total if final \
            else (total // self._chunk_rows) * self._chunk_rows
        if not writable:
            return
        if len(self._segments) == 1:
            merged = self._segments[0]
        else:
            merged = {c: np.concatenate([segment[c]
                                         for segment in self._segments])
                      for c in self._columns}
        self._segments, self._segment_rows = [], 0
        for start in range(0, writable, self._chunk_rows):
            stop = min(start + self._chunk_rows, writable)
            self._write_chunk({c: merged[c][start:stop]
                               for c in self._columns}, stop - start)
        if writable < total:
            self._segments = [{c: merged[c][writable:]
                               for c in self._columns}]
            self._segment_rows = total - writable

    def _write_chunk(self, arrays: Mapping[str, np.ndarray],
                     rows: int) -> None:
        name = f"chunk-{len(self._chunks):06d}.npz"
        # Uncompressed: column blocks are already compact binary and the
        # store optimizes for append/stream throughput, not disk size.
        np.savez(self.path / name, **arrays)
        self._chunks.append(name)
        self._chunk_row_counts.append(rows)
        self._row_count += rows

    def flush(self) -> None:
        """Write everything pending (dict rows and column blocks) as chunks."""
        self._require_writable()
        self._materialize_buffer()
        self._drain_segments(final=True)

    def close(self) -> None:
        """Flush and write the manifest; the store then serves reads."""
        if not self._writable:
            return
        self.flush()
        manifest = {
            "store_schema_version": STORE_SCHEMA_VERSION,
            "schema_version": self._schema_version,
            "columns": list(self._columns),
            "row_count": self._row_count,
            "chunk_rows": self._chunk_rows,
            "chunks": list(self._chunks),
            "chunk_row_counts": list(self._chunk_row_counts),
            "document_header": self._document_header,
            "metadata": self._metadata,
        }
        (self.path / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=False) + "\n")
        self._writable = False

    # -- reading ------------------------------------------------------------
    def _require_readable(self) -> None:
        if self._writable:
            raise StoreError(
                f"{self.path} is still open for writing — close() it first")

    def iter_column_chunks(self) -> Iterator[Dict[str, np.ndarray]]:
        """Yield one ``column -> array`` mapping per chunk, in row order."""
        self._require_readable()
        for name in self._chunks:
            with np.load(self.path / name) as data:
                yield {column: data[column] for column in self._columns}

    def iter_row_chunks(self) -> Iterator[List[Dict[str, object]]]:
        """Yield one list of dict rows per chunk (native Python scalars)."""
        for chunk in self.iter_column_chunks():
            lists = [chunk[column].tolist() for column in self._columns]
            yield [dict(zip(self._columns, values))
                   for values in zip(*lists)]

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """Stream every row as a dict (one chunk in memory at a time)."""
        for rows in self.iter_row_chunks():
            yield from rows

    def rows(self) -> List[Dict[str, object]]:
        """Every row, materialized (convenience for small stores/tests)."""
        return list(self.iter_rows())

    def column(self, name: str) -> np.ndarray:
        """One full column as a single typed array (the analytics view)."""
        self._require_readable()
        if name not in self._columns:
            raise StoreError(f"store has no column {name!r}")
        parts = [chunk[name] for chunk in self.iter_column_chunks()]
        if not parts:
            kind = COLUMN_KINDS.get(name)
            return np.empty(0, dtype=_KIND_DTYPES.get(kind, np.float64))
        return np.concatenate(parts)

    def document(self) -> Dict[str, object]:
        """The full JSON document (header + rows), materialized."""
        document = dict(self._document_header)
        document["row_count"] = self.row_count
        document["rows"] = self.rows()
        return document


# -- persisting result objects ----------------------------------------------
def store_campaign_run(run, path, deterministic: bool = True,
                       chunk_rows: int = DEFAULT_CHUNK_ROWS) -> ColumnarStore:
    """Persist a :class:`~repro.explore.campaign.CampaignRun` as a store.

    The document header mirrors :meth:`CampaignRun.as_document`'s key order,
    so :func:`write_document_json` on the result is bitwise identical to
    :meth:`CampaignRun.write_json` with the same *deterministic* flag.
    """
    columns = result_columns(deterministic)
    header: Dict[str, object] = {"schema_version": SCHEMA_VERSION,
                                 "columns": columns}
    if not deterministic:
        header["workers"] = run.workers
        header["wall_seconds"] = run.wall_seconds
    store = ColumnarStore.create(
        path, columns, document_header=header,
        metadata={"kind": "campaign", "deterministic": deterministic},
        chunk_rows=chunk_rows)
    with store:
        for outcome in run.outcomes:
            store.append_row(outcome.deterministic_row() if deterministic
                             else outcome.as_row())
    return store


def store_shard_run(result, path, deterministic: bool = True,
                    chunk_rows: int = DEFAULT_CHUNK_ROWS) -> ColumnarStore:
    """Persist a :class:`~repro.explore.distrib.ShardRun` as a store.

    The header carries the shard provenance block exactly like the shard
    JSON artifact, so :func:`write_document_json` output is bitwise
    identical to :meth:`ShardRun.write_json` — and therefore mergeable.
    """
    from repro.explore.distrib import DISTRIB_SCHEMA_VERSION

    columns = result_columns(deterministic)
    header: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "distrib_schema_version": DISTRIB_SCHEMA_VERSION,
        "shard": result.shard.provenance(),
        "columns": columns,
    }
    if not deterministic:
        header["workers"] = result.run.workers
        header["wall_seconds"] = result.run.wall_seconds
    store = ColumnarStore.create(
        path, columns, document_header=header,
        metadata={"kind": "shard", "deterministic": deterministic,
                  "shard": result.shard.provenance()},
        chunk_rows=chunk_rows)
    with store:
        for outcome in result.run.outcomes:
            store.append_row(outcome.deterministic_row() if deterministic
                             else outcome.as_row())
    return store


def store_adaptive_result(result, path, deterministic: bool = True,
                          chunk_rows: int = DEFAULT_CHUNK_ROWS,
                          ) -> ColumnarStore:
    """Persist an adaptive search's result *rows* (all rounds + provenance
    columns) as a store.

    Adaptive JSON artifacts carry search-definition keys *after* the rows
    (``front``), so they are not reconstructable by the header-then-rows
    streaming writer; the store therefore keeps the row table plus the
    search provenance in ``metadata`` and leaves the checkpoint JSON
    artifact to :meth:`AdaptiveResult.write_json`.  CSV output *is*
    equivalent: :func:`write_document_csv` matches
    :meth:`AdaptiveResult.write_csv` byte for byte.
    """
    from repro.explore.adaptive import ADAPTIVE_SCHEMA_VERSION

    columns = result.columns(deterministic)
    header: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "adaptive_schema_version": ADAPTIVE_SCHEMA_VERSION,
        "columns": columns,
    }
    store = ColumnarStore.create(
        path, columns, document_header=header,
        metadata={
            "kind": "adaptive", "deterministic": deterministic,
            "objectives": [str(o) for o in result.objectives],
            "complete": result.complete,
            "planned_rounds": result.planned_rounds,
            "completed_rounds": len(result.rounds),
            "front_size": len(result.front),
        },
        chunk_rows=chunk_rows)
    with store:
        store.append_rows(result.iter_rows(deterministic))
    return store


# -- streaming shard merge ---------------------------------------------------
def _create_merge_store(plan, store_path, chunk_rows: int) -> ColumnarStore:
    """A writable store carrying a validated merge plan's header/provenance."""
    return ColumnarStore.create(
        store_path, plan.columns, document_header=plan.header(),
        metadata={
            "kind": "merged-campaign",
            "fingerprint": plan.fingerprint,
            "shard_count": plan.count,
            "total_jobs": plan.total_jobs,
            "present": list(plan.present),
            "missing": list(plan.missing),
        },
        chunk_rows=chunk_rows)


def _append_shard_rows(store: ColumnarStore, columns: Sequence[str],
                       rows: Sequence[Mapping[str, object]]) -> None:
    # Column-block append: one list comprehension per column beats 26 dict
    # lookups per row by a wide margin at merge scale.
    store.append_columns({column: [row[column] for row in rows]
                          for column in columns})


def merge_documents_to_store(documents: Sequence[Mapping[str, object]],
                             store_path, partial: bool = False,
                             chunk_rows: int = DEFAULT_CHUNK_ROWS,
                             ) -> ColumnarStore:
    """Merge already-loaded shard documents into a store.

    The columnar counterpart of
    :func:`~repro.explore.distrib.merge_shard_documents` — same
    :func:`~repro.explore.distrib.plan_merge` validation, same shard order,
    but the rows land as typed column chunks instead of one concatenated
    Python list.  When the artifacts live on disk, prefer
    :func:`merge_artifacts_to_store`, which never loads them all at once.
    """
    plan = plan_merge(documents, partial=partial)
    store = _create_merge_store(plan, store_path, chunk_rows)
    with store:
        for position in plan.order:
            _append_shard_rows(store, plan.columns,
                               documents[position]["rows"])
    return store


def merge_artifacts_to_store(paths: Sequence, store_path,
                             partial: bool = False,
                             chunk_rows: int = DEFAULT_CHUNK_ROWS,
                             ) -> Tuple[ColumnarStore, List[Dict[str, object]]]:
    """Merge shard JSON artifacts into a store without holding all rows.

    Two passes: first every artifact is loaded once for validation and its
    row-less header is kept (:func:`~repro.explore.distrib.plan_merge` runs
    the full shard-set validation on those headers); then the artifacts are
    re-read one at a time in shard-index order, their rows appended to the
    store and dropped.  Peak memory is one shard plus one chunk buffer —
    independent of the shard count — while the resulting store regenerates
    (:func:`write_document_json`) the exact bytes of
    :func:`~repro.explore.distrib.merge_shard_documents` +
    ``write_merged_json``.

    Returns ``(store, headers)`` — the headers (shard artifacts minus their
    rows) feed the CLI's merge report.  Raises
    :class:`~repro.explore.distrib.MergeError` like the in-memory merge.
    """
    headers: List[Dict[str, object]] = []
    row_counts: List[Optional[int]] = []
    for path in paths:
        document = load_artifact(path)
        rows = document.get("rows")
        row_counts.append(len(rows) if isinstance(rows, list) else None)
        headers.append({key: value for key, value in document.items()
                        if key != "rows"})
        del document, rows
    plan = plan_merge(headers, partial=partial, row_counts=row_counts)

    store = _create_merge_store(plan, store_path, chunk_rows)
    with store:
        for position in plan.order:
            document = load_artifact(paths[position])
            rows = document.get("rows")
            if not isinstance(rows, list) or \
                    len(rows) != plan.row_counts[position]:
                raise MergeError(
                    f"{paths[position]} changed between validation and merge")
            _append_shard_rows(store, plan.columns, rows)
            del document, rows
    return store, headers


# -- binary columnar shard payloads ------------------------------------------
#: Magic prefix of an encoded shard block (repro shard block, layout 1).
SHARD_BLOCK_MAGIC = b"RSB1"


@dataclass(frozen=True)
class ShardBlock:
    """A decoded binary shard result: row-less header + typed column arrays.

    The columnar twin of a shard result *document*: ``header`` is exactly
    the document minus its ``rows`` list (schema/envelope versions, shard
    provenance, column list, declared ``row_count``), ``columns`` maps each
    declared column to a typed numpy array.  Produced by
    :func:`decode_shard_block`; ingested by
    :meth:`IncrementalShardMerge.add_shard_block` without ever
    materializing per-row dicts.
    """

    header: Dict[str, object]
    columns: Dict[str, np.ndarray] = field(repr=False)

    @property
    def row_count(self) -> int:
        return int(self.header.get("row_count", 0))

    def document(self) -> Dict[str, object]:
        """Materialize the equivalent dict-row shard document.

        The inverse of :func:`encode_shard_block` — key order matches
        :meth:`~repro.explore.distrib.ShardRun.as_document` (``rows`` last),
        and ``.tolist()`` restores native Python scalars, so the round trip
        is JSON-identical to the original document.
        """
        names = [str(column) for column in self.header.get("columns", ())]
        document = dict(self.header)
        lists = [self.columns[name].tolist() for name in names]
        document["rows"] = [dict(zip(names, values))
                            for values in zip(*lists)]
        return document


def encode_shard_block(document: Mapping[str, object]) -> bytes:
    """Encode a shard result document as a binary columnar payload.

    Layout: ``b"RSB1"`` magic, a big-endian u32 header length, a u32
    CRC-32 covering everything after itself, the row-less document header
    as compact JSON (carrying the same schema/fingerprint/provenance block
    the JSON artifact does), then one length-prefixed raw ``.npy`` array
    per column in header-column order, typed through the store's schema
    dtypes.  Raw npy framing instead of an npz archive keeps the per-block
    fixed cost at memcpy level (no zip machinery); the explicit checksum
    keeps bit-flip detection.  This is the protocol-v2 completion payload:
    a worker encodes once, the coordinator decodes straight into typed
    arrays and appends them to the :class:`ColumnarStore` — no per-row
    dicts, no JSON row parsing.
    """
    if not isinstance(document, Mapping):
        raise StoreError("shard block source is not a result document")
    rows = document.get("rows")
    if not isinstance(rows, list):
        raise StoreError("shard block source carries no row list")
    columns = document.get("columns")
    if not isinstance(columns, (list, tuple)) or not columns:
        raise StoreError("shard block source declares no columns")
    header = {key: value for key, value in document.items() if key != "rows"}
    arrays = []
    for column in columns:
        try:
            values = [row[column] for row in rows]
        except KeyError as error:
            raise StoreError(
                f"shard block row is missing column {error.args[0]!r}")
        array = _column_array(str(column), values)
        if array.dtype.kind == "U" and array.tolist() != values:
            # Fixed-width numpy unicode drops trailing NULs on read-back;
            # refuse the lossy encode rather than corrupt silently.  (The
            # read-back comparison is vectorized; a Python-level scan of
            # every string would dominate bulk encodes.)
            raise StoreError(
                f"column {column!r} holds NUL-terminated strings, which a "
                f"shard block cannot store losslessly")
        arrays.append(array)
    header_bytes = json.dumps(header, sort_keys=False,
                              separators=(",", ":")).encode("utf-8")
    chunks = [header_bytes]
    for array in arrays:
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, array, allow_pickle=False)
        encoded = buffer.getvalue()
        chunks.append(struct.pack(">I", len(encoded)))
        chunks.append(encoded)
    body = b"".join(chunks)
    return b"".join((SHARD_BLOCK_MAGIC, struct.pack(">I", len(header_bytes)),
                     struct.pack(">I", zlib.crc32(body)), body))


def decode_shard_block(payload: Union[bytes, bytearray, memoryview]
                       ) -> ShardBlock:
    """Decode an :func:`encode_shard_block` payload back to a ShardBlock.

    Every structural defect — wrong magic, truncated header or columns,
    checksum mismatch, corrupt JSON, missing columns, disagreeing lengths —
    raises :class:`StoreError` with a message naming the defect; nothing is
    partially ingested.  Semantic validation against a merge plan
    (fingerprint, span, schema versions) stays with
    :func:`~repro.explore.distrib.validate_shard_result`, which reads only
    the decoded header.
    """
    data = bytes(payload)
    prefix = len(SHARD_BLOCK_MAGIC)
    if not data.startswith(SHARD_BLOCK_MAGIC):
        raise StoreError("not a shard block (bad magic)")
    if len(data) < prefix + 8:
        raise StoreError(f"truncated shard block ({len(data)} byte(s))")
    (header_len, checksum) = struct.unpack_from(">II", data, prefix)
    body = prefix + 8
    if len(data) < body + header_len:
        raise StoreError(
            f"truncated shard block header ({len(data)} byte(s), header "
            f"needs {body + header_len})")
    if zlib.crc32(data[body:]) != checksum:
        raise StoreError("corrupt shard block payload (checksum mismatch)")
    try:
        header = json.loads(data[body:body + header_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise StoreError(f"corrupt shard block header: {error}")
    if not isinstance(header, dict):
        raise StoreError("shard block header is not a JSON object")
    columns = header.get("columns")
    if not isinstance(columns, list) or not columns:
        raise StoreError("shard block header declares no columns")
    arrays: Dict[str, np.ndarray] = {}
    offset = body + header_len
    try:
        for column in columns:
            if len(data) < offset + 4:
                raise StoreError(
                    f"truncated shard block payload at column {column!r}")
            (array_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            if len(data) < offset + array_len:
                raise StoreError(
                    f"truncated shard block payload at column {column!r}")
            arrays[str(column)] = np.lib.format.read_array(
                io.BytesIO(data[offset:offset + array_len]),
                allow_pickle=False)
            offset += array_len
    except StoreError:
        raise
    except Exception as error:
        raise StoreError(f"truncated or corrupt shard block payload: "
                         f"{error}")
    if offset != len(data):
        raise StoreError(
            f"shard block carries {len(data) - offset} trailing byte(s)")
    lengths = {len(array) for array in arrays.values()}
    if len(lengths) > 1:
        raise StoreError(
            f"shard block column lengths disagree: {sorted(lengths)}")
    row_count = lengths.pop() if lengths else 0
    if header.get("row_count") != row_count:
        raise StoreError(
            f"shard block declares {header.get('row_count')!r} row(s) but "
            f"carries {row_count}")
    return ShardBlock(header=header, columns=arrays)


class IncrementalShardMerge:
    """Streaming merge that accepts shard result documents in *completion*
    order — the live coordinator's ingestion path.

    :func:`merge_artifacts_to_store` needs the whole shard set on disk before
    it starts; a coordinator instead receives shard documents one at a time,
    in whatever order the worker fleet completes them.  This class keeps the
    store's rows in canonical shard order anyway: a document whose shard
    index is next in line is appended to the :class:`ColumnarStore`
    immediately (and its rows dropped), out-of-order arrivals are buffered
    until the gap before them closes.  Peak memory is therefore bounded by
    the out-of-order window, not the campaign: with a fleet completing
    roughly in order it stays at one shard.

    Every document is validated on arrival against the plan the merge was
    created from (:func:`repro.explore.distrib.validate_shard_result`:
    versions, provenance, canonical span, row counts, column agreement) and
    duplicate shard indexes are rejected — the exactly-once guarantee the
    coordinator's lease bookkeeping relies on.  After :meth:`finalize`, the
    closed store regenerates (:func:`write_document_json` /
    :func:`write_document_csv`) artifacts **bitwise identical** to the
    single-host deterministic run, exactly like the offline merge paths.
    """

    def __init__(self, store_path, *, count: int, total_jobs: int,
                 fingerprint: str, columns: Sequence[str],
                 schema_version: int = SCHEMA_VERSION,
                 metadata: Optional[Mapping[str, object]] = None,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 metrics=None, log=None):
        self._count = int(count)
        self._total_jobs = int(total_jobs)
        self._fingerprint = str(fingerprint)
        self._columns = tuple(columns)
        # The header of the *complete* merged artifact: exactly the key
        # prefix of CampaignRun.as_document(deterministic=True).
        header: Dict[str, object] = {"schema_version": schema_version,
                                     "columns": list(self._columns)}
        self._store = ColumnarStore.create(
            store_path, self._columns, schema_version=schema_version,
            document_header=header,
            metadata={
                "kind": "coordinated-campaign",
                "fingerprint": self._fingerprint,
                "shard_count": self._count,
                "total_jobs": self._total_jobs,
                **dict(metadata or {}),
            },
            chunk_rows=chunk_rows)
        self._next = 0
        self._buffered: Dict[int, Union[List[Mapping[str, object]],
                                        Dict[str, np.ndarray]]] = {}
        self._merged: set = set()
        # Optional observability plane (repro.explore.metrics): a shared
        # MetricsRegistry and/or StructuredLog; the campaign label keeps
        # multi-campaign coordinators apart on one registry.
        self._campaign = str(dict(metadata or {}).get("campaign", ""))
        self._log = log
        if metrics is not None:
            self._m_rows = metrics.counter(
                "merge_rows_appended_total",
                "Rows drained from the in-order prefix into the store.")
            self._m_drains = metrics.histogram(
                "merge_drain_rows",
                "Rows appended per in-order drain pass.", DRAIN_ROW_BUCKETS)
            self._m_buffered = metrics.gauge(
                "merge_buffered_shards",
                "Accepted shards waiting for an earlier gap to close.")
        else:
            self._m_rows = self._m_drains = self._m_buffered = None

    # -- introspection ------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def merged_count(self) -> int:
        """Shards accepted so far (appended or buffered)."""
        return len(self._merged)

    @property
    def buffered_count(self) -> int:
        """Accepted shards still waiting for an earlier gap to close."""
        return len(self._buffered)

    @property
    def is_complete(self) -> bool:
        return len(self._merged) == self._count

    @property
    def missing(self) -> List[int]:
        return [index for index in range(self._count)
                if index not in self._merged]

    # -- ingestion ----------------------------------------------------------
    def add_shard_document(self, document: Mapping[str, object]) -> int:
        """Validate and ingest one shard result document; returns its index.

        Raises :class:`~repro.explore.distrib.MergeError` when the document
        does not belong to this merge's plan or its shard index was already
        ingested (double completion of the same span).
        """
        index = validate_shard_result(
            document, count=self._count, total_jobs=self._total_jobs,
            fingerprint=self._fingerprint, columns=self._columns)
        return self._ingest(index, list(document["rows"]))

    def add_shard_block(self, block: Union[ShardBlock, bytes, bytearray,
                                           memoryview]) -> int:
        """Validate and ingest one *binary columnar* shard result.

        The protocol-v2 completion path: accepts a :class:`ShardBlock` (or
        the raw :func:`encode_shard_block` bytes, decoded here) and buffers
        its typed column arrays directly — the rows never exist as Python
        dicts on the coordinator.  Validation is the same
        :func:`~repro.explore.distrib.validate_shard_result` the JSON path
        runs, applied to the decoded header with the decoded array length
        standing in for ``len(rows)``.  Structural decode errors surface as
        :class:`~repro.explore.distrib.MergeError` like any other invalid
        completion.
        """
        if isinstance(block, (bytes, bytearray, memoryview)):
            try:
                block = decode_shard_block(block)
            except StoreError as error:
                raise MergeError(str(error))
        index = validate_shard_result(
            block.header, count=self._count, total_jobs=self._total_jobs,
            fingerprint=self._fingerprint, columns=self._columns,
            actual_rows=block.row_count)
        return self._ingest(index, dict(block.columns))

    def _ingest(self, index: int,
                entry: Union[List[Mapping[str, object]],
                             Dict[str, np.ndarray]]) -> int:
        if index in self._merged:
            raise MergeError(f"shard {index} was already merged "
                             f"(double completion)")
        self._merged.add(index)
        self._buffered[index] = entry
        # Drain the in-order prefix: everything contiguous from _next flows
        # straight into typed column chunks and is dropped from memory.
        drained_rows = 0
        drained_shards = 0
        while self._next in self._buffered:
            pending = self._buffered.pop(self._next)
            if isinstance(pending, dict):
                self._store.append_columns(pending)
                drained_rows += len(pending[self._columns[0]])
            else:
                _append_shard_rows(self._store, self._columns, pending)
                drained_rows += len(pending)
            drained_shards += 1
            self._next += 1
        if self._m_rows is not None:
            if drained_shards:
                self._m_rows.inc(drained_rows)
                self._m_drains.observe(drained_rows)
            self._m_buffered.set(len(self._buffered))
        if self._log is not None:
            self._log.emit("merge-drain", campaign=self._campaign,
                           shard=index, drained_shards=drained_shards,
                           drained_rows=drained_rows,
                           buffered=len(self._buffered))
        return index

    def finalize(self) -> ColumnarStore:
        """Close the store once every shard arrived; returns it readable."""
        if not self.is_complete:
            raise MergeError(f"incomplete shard set: missing shard index(es) "
                             f"{self.missing} of {self._count}")
        self._store.close()
        return self._store


# -- streaming artifact writers ----------------------------------------------
def write_document_json(store: ColumnarStore, path) -> None:
    """Stream a store out as a JSON artifact, chunk by chunk.

    Reproduces ``json.dump(store.document(), handle, indent=2,
    sort_keys=False)`` plus the trailing newline *byte for byte* without
    ever materializing the row list — the bitwise-identity contract of the
    artifact writers, extended to the streaming path.
    """
    header = store.document_header
    header["row_count"] = store.row_count
    with open(path, "w") as handle:
        handle.write("{\n")
        for key, value in header.items():
            text = json.dumps(value, indent=2).replace("\n", "\n  ")
            handle.write(f"  {json.dumps(key)}: {text},\n")
        handle.write('  "rows": [')
        first = True
        for rows in store.iter_row_chunks():
            for row in rows:
                text = json.dumps(row, indent=2).replace("\n", "\n    ")
                handle.write("\n    " if first else ",\n    ")
                handle.write(text)
                first = False
        handle.write("]\n}\n" if first else "\n  ]\n}\n")


def write_document_csv(store: ColumnarStore, path) -> None:
    """Stream a store out as a CSV artifact (header = its column list)."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=store.columns)
        writer.writeheader()
        for rows in store.iter_row_chunks():
            writer.writerows(rows)
