"""TLM versus RTL/gate-level simulation speed (paper, Section IV).

The paper reports that simulating ~300 million clock cycles of the complete
test at transaction level takes less than seven minutes, while RTL simulation
of the processor core alone for the same cycle count exceeds two days (and
gate level is another order of magnitude slower) — three-plus orders of
magnitude between the abstraction levels.

We reproduce the *comparison* rather than the absolute numbers: a synthetic
gate-level model of a scan core is simulated cycle by cycle to measure the
achievable cycles-per-second at "RTL/gate level" in this code base, the
JPEG SoC TLM is simulated to measure cycles-per-second at transaction level,
and both are extrapolated to the paper's 300-million-cycle test program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.rtl.generate import SyntheticCoreSpec, generate_netlist
from repro.rtl.simulation import LogicSimulator
from repro.soc.system import JpegSocTlm
from repro.soc.testplan import build_test_tasks, build_test_schedules


@dataclass
class SpeedupResult:
    """Outcome of the abstraction-level speed comparison."""

    gate_level_cycles_simulated: int
    gate_level_seconds: float
    tlm_cycles_simulated: int
    tlm_seconds: float
    reference_cycles: int = 300_000_000

    @property
    def gate_level_cycles_per_second(self) -> float:
        return self.gate_level_cycles_simulated / max(self.gate_level_seconds, 1e-12)

    @property
    def tlm_cycles_per_second(self) -> float:
        return self.tlm_cycles_simulated / max(self.tlm_seconds, 1e-12)

    @property
    def speedup(self) -> float:
        """How many times faster the TLM simulates one SoC clock cycle."""
        return self.tlm_cycles_per_second / max(self.gate_level_cycles_per_second, 1e-12)

    @property
    def gate_level_projection_seconds(self) -> float:
        """Projected wall-clock time for the reference cycle count at gate level."""
        return self.reference_cycles / max(self.gate_level_cycles_per_second, 1e-12)

    @property
    def tlm_projection_seconds(self) -> float:
        """Projected wall-clock time for the reference cycle count at TLM level."""
        return self.reference_cycles / max(self.tlm_cycles_per_second, 1e-12)

    def summary(self) -> str:
        return "\n".join([
            "abstraction-level speed comparison "
            f"(reference: {self.reference_cycles / 1e6:.0f} Mcycles)",
            f"  gate level : {self.gate_level_cycles_per_second:12,.0f} cycles/s "
            f"-> {self.gate_level_projection_seconds / 3600.0:8.1f} h projected",
            f"  TLM        : {self.tlm_cycles_per_second:12,.0f} cycles/s "
            f"-> {self.tlm_projection_seconds:8.1f} s projected",
            f"  speedup    : {self.speedup:12,.0f}x",
        ])


def run_speed_comparison(gate_level_cycles: int = 400,
                         core_flip_flops: int = 600,
                         core_gates: int = 3_000,
                         schedule_name: str = "schedule_4",
                         reference_cycles: int = 300_000_000) -> SpeedupResult:
    """Measure gate-level and TLM simulation speed and extrapolate.

    *gate_level_cycles* free-running clock cycles of a synthetic scan core
    (default 1 000 flip-flops / 5 000 gates) are simulated gate by gate; the
    TLM side simulates one complete test schedule of the JPEG SoC.  Both
    figures are converted into simulated-cycles-per-wall-clock-second and
    extrapolated to *reference_cycles*.
    """
    if gate_level_cycles <= 0:
        raise ValueError("gate_level_cycles must be positive")
    spec = SyntheticCoreSpec(name="speedup_core", flip_flops=core_flip_flops,
                             gates=core_gates, seed=3)
    netlist = generate_netlist(spec)
    simulator = LogicSimulator(netlist)
    gate_start = time.perf_counter()
    simulator.run_cycles(gate_level_cycles)
    gate_seconds = time.perf_counter() - gate_start

    soc = JpegSocTlm()
    tasks = build_test_tasks()
    schedule = build_test_schedules()[schedule_name]
    tlm_start = time.perf_counter()
    metrics = soc.run_test_schedule(schedule, tasks)
    tlm_seconds = time.perf_counter() - tlm_start

    return SpeedupResult(
        gate_level_cycles_simulated=gate_level_cycles,
        gate_level_seconds=gate_seconds,
        tlm_cycles_simulated=metrics.test_length_cycles,
        tlm_seconds=tlm_seconds,
        reference_cycles=reference_cycles,
    )
