"""Transaction recording.

The monitors in :mod:`repro.dft` derive TAM utilization and power profiles
from the transaction stream, which is exactly the simulation-based evaluation
of schedules the paper advocates.  The tracer is deliberately generic: any
channel can record the begin/end of a transaction together with free-form
attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.kernel.simtime import SimTime


@dataclass
class TransactionRecord:
    """A completed transaction on some channel."""

    channel: str
    kind: str
    start: SimTime
    end: SimTime
    initiator: str = ""
    address: Optional[int] = None
    data_bits: int = 0
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> SimTime:
        return self.end - self.start

    def overlaps(self, start: SimTime, end: SimTime) -> bool:
        """True if the transaction overlaps the half-open window [start, end)."""
        return self.start < end and self.end > start


class TransactionTracer:
    """Collects :class:`TransactionRecord` objects during a simulation."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TransactionRecord] = []

    def record(self, record: TransactionRecord) -> None:
        if self.enabled:
            self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    # -- queries ------------------------------------------------------------
    def for_channel(self, channel: str) -> List[TransactionRecord]:
        return [r for r in self.records if r.channel == channel]

    def channels(self) -> List[str]:
        return sorted({r.channel for r in self.records})

    def total_busy_time(self, channel: str) -> SimTime:
        """Total busy duration of *channel*, merging overlapping transactions."""
        intervals = sorted(
            ((r.start.femtoseconds, r.end.femtoseconds) for r in self.for_channel(channel))
        )
        busy = 0
        current_start = current_end = None
        for start, end in intervals:
            if current_end is None or start > current_end:
                if current_end is not None:
                    busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_end is not None:
            busy += current_end - current_start
        return SimTime(busy)

    def utilization(self, channel: str, window_start: SimTime,
                    window_end: SimTime) -> float:
        """Fraction of the window during which *channel* was busy."""
        window = window_end - window_start
        if window.femtoseconds == 0:
            return 0.0
        busy = 0
        ws, we = window_start.femtoseconds, window_end.femtoseconds
        intervals = sorted(
            (max(r.start.femtoseconds, ws), min(r.end.femtoseconds, we))
            for r in self.for_channel(channel)
            if r.overlaps(window_start, window_end)
        )
        current_start = current_end = None
        for start, end in intervals:
            if current_end is None or start > current_end:
                if current_end is not None:
                    busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_end is not None:
            busy += current_end - current_start
        return busy / window.femtoseconds

    def utilization_profile(self, channel: str, window: SimTime,
                            start: Optional[SimTime] = None,
                            end: Optional[SimTime] = None) -> List[float]:
        """Utilization per fixed-size window across [start, end).

        Used to compute the *peak* TAM utilization of Table I: the peak is the
        maximum over the per-window utilizations.
        """
        records = self.for_channel(channel)
        if not records:
            return []
        if start is None:
            start = min(r.start for r in records)
        if end is None:
            end = max(r.end for r in records)
        if window.femtoseconds <= 0:
            raise ValueError("window must be a positive duration")
        profile = []
        cursor = start
        while cursor < end:
            upper = cursor + window
            profile.append(self.utilization(channel, cursor, min(upper, end)))
            cursor = upper
        return profile

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[TransactionRecord]:
        return iter(self.records)
