"""Transaction recording.

The monitors in :mod:`repro.dft` derive TAM utilization and power profiles
from the transaction stream, which is exactly the simulation-based evaluation
of schedules the paper advocates.  The tracer is deliberately generic: any
channel can record the begin/end of a transaction together with free-form
attributes.

Storage is *columnar*: one flat list per field, with timestamps kept as
plain integer femtoseconds.  The channel hot paths append scalars through
:meth:`TransactionTracer.record_fs` without building any per-transaction
object; :class:`TransactionRecord` views (with :class:`SimTime` endpoints)
are materialized lazily when a query or test asks for them.  Interval
queries (busy time, utilization) run directly over the integer columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.kernel.simtime import SimTime


@dataclass
class TransactionRecord:
    """A completed transaction on some channel (materialized view)."""

    channel: str
    kind: str
    start: SimTime
    end: SimTime
    initiator: str = ""
    address: Optional[int] = None
    data_bits: int = 0
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> SimTime:
        return self.end - self.start

    def overlaps(self, start: SimTime, end: SimTime) -> bool:
        """True if the transaction overlaps the half-open window [start, end)."""
        return self.start < end and self.end > start


def _merged_busy_fs(intervals: List[Tuple[int, int]]) -> int:
    """Total covered length of possibly-overlapping ``(start, end)`` pairs."""
    busy = 0
    current_start = current_end = None
    for start, end in sorted(intervals):
        if current_end is None or start > current_end:
            if current_end is not None:
                busy += current_end - current_start
            current_start, current_end = start, end
        else:
            if end > current_end:
                current_end = end
    if current_end is not None:
        busy += current_end - current_start
    return busy


class TransactionTracer:
    """Collects transaction data during a simulation (columnar storage)."""

    __slots__ = ("enabled", "_channels", "_kinds", "_starts_fs", "_ends_fs",
                 "_initiators", "_addresses", "_data_bits", "_attributes",
                 "_merged_cache")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._channels: List[str] = []
        self._kinds: List[str] = []
        self._starts_fs: List[int] = []
        self._ends_fs: List[int] = []
        self._initiators: List[str] = []
        self._addresses: List[Optional[int]] = []
        self._data_bits: List[int] = []
        self._attributes: List[Optional[Dict[str, object]]] = []
        # channel -> (record count at build, merged starts, merged ends,
        # busy-length prefix sums); rebuilt when the record count moves.
        self._merged_cache: Dict[str, Tuple[int, np.ndarray, np.ndarray,
                                            np.ndarray]] = {}

    # -- recording ----------------------------------------------------------
    def record_fs(self, channel: str, kind: str, start_fs: int, end_fs: int,
                  initiator: str = "", address: Optional[int] = None,
                  data_bits: int = 0,
                  attributes: Optional[Dict[str, object]] = None) -> None:
        """Append one transaction from integer-femtosecond endpoints.

        This is the channel hot path: callers are expected to have checked
        :attr:`enabled` already (so a disabled tracer costs a single flag
        check at the call site), but the method stays safe to call either
        way.
        """
        if not self.enabled:
            return
        self._channels.append(channel)
        self._kinds.append(kind)
        self._starts_fs.append(start_fs)
        self._ends_fs.append(end_fs)
        self._initiators.append(initiator)
        self._addresses.append(address)
        self._data_bits.append(data_bits)
        self._attributes.append(attributes)

    def record(self, record: TransactionRecord) -> None:
        """Append a pre-built :class:`TransactionRecord` (compatibility API)."""
        if self.enabled:
            self.record_fs(
                record.channel, record.kind,
                record.start.femtoseconds, record.end.femtoseconds,
                initiator=record.initiator, address=record.address,
                data_bits=record.data_bits, attributes=record.attributes,
            )

    def clear(self) -> None:
        for column in (self._channels, self._kinds, self._starts_fs,
                       self._ends_fs, self._initiators, self._addresses,
                       self._data_bits, self._attributes):
            column.clear()
        self._merged_cache.clear()

    # -- materialization ----------------------------------------------------
    def _materialize(self, index: int) -> TransactionRecord:
        attributes = self._attributes[index]
        return TransactionRecord(
            channel=self._channels[index], kind=self._kinds[index],
            start=SimTime(self._starts_fs[index]),
            end=SimTime(self._ends_fs[index]),
            initiator=self._initiators[index],
            address=self._addresses[index],
            data_bits=self._data_bits[index],
            attributes=attributes if attributes is not None else {},
        )

    @property
    def records(self) -> List[TransactionRecord]:
        """All transactions as lazily materialized records."""
        return [self._materialize(index) for index in range(len(self._channels))]

    def _channel_indices(self, channel: str) -> List[int]:
        return [index for index, name in enumerate(self._channels)
                if name == channel]

    # -- queries ------------------------------------------------------------
    def for_channel(self, channel: str) -> List[TransactionRecord]:
        return [self._materialize(index)
                for index in self._channel_indices(channel)]

    def channels(self) -> List[str]:
        return sorted(set(self._channels))

    def bounds_fs(self, channel: str) -> Optional[Tuple[int, int]]:
        """(min start, max end) of *channel* in femtoseconds, or None."""
        starts = self._starts_fs
        ends = self._ends_fs
        lo = hi = None
        for index, name in enumerate(self._channels):
            if name != channel:
                continue
            start, end = starts[index], ends[index]
            if lo is None or start < lo:
                lo = start
            if hi is None or end > hi:
                hi = end
        if lo is None:
            return None
        return lo, hi

    def data_bits_total(self, channel: str) -> int:
        """Total payload bits recorded for *channel*."""
        bits = self._data_bits
        return sum(bits[index] for index in self._channel_indices(channel))

    def _channel_merged(self, channel: str) -> Tuple[np.ndarray, np.ndarray,
                                                     np.ndarray]:
        """Disjoint sorted busy intervals of *channel* plus prefix sums.

        Returns ``(starts, ends, prefix)`` where the intervals are merged
        (overlapping and touching transactions coalesced) and ``prefix[i]``
        is the total busy length of the first ``i`` intervals, so any
        windowed busy-time query becomes two :func:`numpy.searchsorted`
        probes plus boundary clips.  Cached per channel; the tracer is
        append-only, so a changed record count is the only invalidation.
        """
        count = len(self._channels)
        cached = self._merged_cache.get(channel)
        if cached is not None and cached[0] == count:
            return cached[1], cached[2], cached[3]
        indices = self._channel_indices(channel)
        starts = np.asarray([self._starts_fs[i] for i in indices],
                            dtype=np.int64)
        ends = np.asarray([self._ends_fs[i] for i in indices], dtype=np.int64)
        if len(starts):
            order = np.lexsort((ends, starts))
            starts, ends = starts[order], ends[order]
            running = np.maximum.accumulate(ends)
            breaks = np.empty(len(starts), dtype=bool)
            breaks[0] = True
            breaks[1:] = starts[1:] > running[:-1]
            merged_starts = starts[breaks]
            last = np.append(np.flatnonzero(breaks)[1:] - 1, len(starts) - 1)
            merged_ends = running[last]
        else:
            merged_starts = starts
            merged_ends = ends
        prefix = np.concatenate(
            ([0], np.cumsum(merged_ends - merged_starts)))
        self._merged_cache[channel] = (count, merged_starts, merged_ends,
                                       prefix)
        return merged_starts, merged_ends, prefix

    def total_busy_time(self, channel: str) -> SimTime:
        """Total busy duration of *channel*, merging overlapping transactions."""
        _, _, prefix = self._channel_merged(channel)
        return SimTime(int(prefix[-1]))

    def busy_fs_in_window(self, channel: str, window_start_fs: int,
                          window_end_fs: int) -> int:
        """Busy femtoseconds of *channel* clipped to [start, end)."""
        if window_end_fs < window_start_fs:
            raise ValueError("window end precedes window start")
        starts, ends, prefix = self._channel_merged(channel)
        lo = int(np.searchsorted(ends, window_start_fs, side="right"))
        hi = int(np.searchsorted(starts, window_end_fs, side="left"))
        if lo >= hi:
            return 0
        busy = int(prefix[hi] - prefix[lo])
        busy -= max(0, window_start_fs - int(starts[lo]))
        busy -= max(0, int(ends[hi - 1]) - window_end_fs)
        return busy

    def utilization(self, channel: str, window_start: SimTime,
                    window_end: SimTime) -> float:
        """Fraction of the window during which *channel* was busy."""
        window_start_fs = SimTime.coerce(window_start).femtoseconds
        window_end_fs = SimTime.coerce(window_end).femtoseconds
        window = window_end_fs - window_start_fs
        if window == 0:
            return 0.0
        return self.busy_fs_in_window(channel, window_start_fs,
                                      window_end_fs) / window

    def utilization_profile(self, channel: str, window: SimTime,
                            start: Optional[SimTime] = None,
                            end: Optional[SimTime] = None) -> List[float]:
        """Utilization per fixed-size window across [start, end).

        Used to compute the *peak* TAM utilization of Table I: the peak is the
        maximum over the per-window utilizations.
        """
        bounds = self.bounds_fs(channel)
        if bounds is None:
            return []
        start_fs = bounds[0] if start is None else SimTime.coerce(start).femtoseconds
        end_fs = bounds[1] if end is None else SimTime.coerce(end).femtoseconds
        window_fs = window.femtoseconds
        if window_fs <= 0:
            raise ValueError("window must be a positive duration")
        if end_fs <= start_fs:
            return []
        starts, ends, prefix = self._channel_merged(channel)
        window_count = -((start_fs - end_fs) // window_fs)
        lows = start_fs + window_fs * np.arange(window_count, dtype=np.int64)
        highs = np.minimum(lows + window_fs, end_fs)
        lo = np.searchsorted(ends, lows, side="right")
        hi = np.searchsorted(starts, highs, side="left")
        occupied = lo < hi
        # Clipped indices keep the gathers in bounds; the `occupied` mask
        # zeroes every window the clip would otherwise misattribute.
        lo_safe = np.minimum(lo, max(len(starts) - 1, 0))
        hi_safe = np.maximum(hi, 1)
        busy = np.where(
            occupied,
            prefix[hi] - prefix[lo]
            - np.maximum(0, lows - starts[lo_safe])
            - np.maximum(0, ends[hi_safe - 1] - highs),
            0)
        return (busy / (highs - lows)).tolist()

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[TransactionRecord]:
        return iter(self.records)
