"""Clocks.

At transaction level, per-cycle clock events would defeat the purpose of the
abstraction, so :class:`Clock` exposes its period for cycle-cost arithmetic
and generates edge events lazily — an edge is only scheduled while at least
one process is waiting for it.
"""

from __future__ import annotations

from typing import Union

from repro.kernel.channel import Channel
from repro.kernel.event import Event
from repro.kernel.module import Module
from repro.kernel.simtime import SimTime, cycles_to_time
from repro.kernel.simulator import Simulator


class Clock(Channel):
    """A clock defined by its period.

    ``yield clock.posedge()`` suspends a process until the next rising edge.
    ``clock.cycles(n)`` converts a cycle count into a :class:`SimTime`
    duration, which is how approximately-timed models account for time without
    paying for per-cycle events.
    """

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 period: Union[SimTime, int]):
        super().__init__(parent, name)
        self.period = SimTime.coerce(period)
        if self.period.femtoseconds <= 0:
            raise ValueError("clock period must be positive")
        self._posedge_event = self.sim.event(f"{self.name}.posedge")
        self._edge_scheduled = False

    @classmethod
    def from_frequency(cls, parent, name: str, frequency_hz: float) -> "Clock":
        """Create a clock from a frequency in hertz."""
        if frequency_hz <= 0:
            raise ValueError("clock frequency must be positive")
        period_fs = round(1e15 / frequency_hz)
        return cls(parent, name, SimTime(period_fs))

    @property
    def frequency_hz(self) -> float:
        return 1e15 / self.period.femtoseconds

    def cycles(self, count: int) -> SimTime:
        """Duration of *count* clock cycles."""
        return cycles_to_time(count, self.period)

    def cycles_between(self, start: SimTime, end: SimTime) -> int:
        """Number of full clock cycles between two points in time."""
        return (end - start) // self.period

    def posedge(self) -> Event:
        """Event for the next rising edge (lazily scheduled)."""
        self._schedule_next_edge()
        return self._posedge_event

    def _schedule_next_edge(self) -> None:
        if self._edge_scheduled:
            return
        self._edge_scheduled = True
        now_fs = self.sim.now_fs
        period_fs = self.period.femtoseconds
        remainder = now_fs % period_fs
        delay = period_fs - remainder if remainder else period_fs
        self.sim.schedule_callback(self._fire_edge, SimTime(delay))

    def _fire_edge(self) -> None:
        self._edge_scheduled = False
        had_waiters = self._posedge_event.waiter_count > 0
        self._posedge_event.notify(0)
        if had_waiters:
            # Keep the edge train alive while there is interest.
            self._schedule_next_edge()

    def __repr__(self):
        return f"Clock({self.name!r}, period={self.period})"
