"""A bounded FIFO channel with blocking access (``sc_fifo`` analogue)."""

from __future__ import annotations

from collections import deque
from typing import Union

from repro.kernel.channel import Channel
from repro.kernel.interface import Interface
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator


class FifoPutInterface(Interface):
    """Blocking/non-blocking write side of a FIFO."""

    def put(self, item):  # pragma: no cover - interface declaration
        raise NotImplementedError

    def try_put(self, item) -> bool:  # pragma: no cover - interface declaration
        raise NotImplementedError


class FifoGetInterface(Interface):
    """Blocking/non-blocking read side of a FIFO."""

    def get(self):  # pragma: no cover - interface declaration
        raise NotImplementedError

    def try_get(self):  # pragma: no cover - interface declaration
        raise NotImplementedError


class Fifo(Channel, FifoPutInterface, FifoGetInterface):
    """Bounded FIFO.

    ``put`` and ``get`` are generators (blocking calls) and must be invoked
    with ``yield from``; ``try_put``/``try_get`` are plain non-blocking calls.
    """

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 capacity: int = 16):
        super().__init__(parent, name)
        if capacity <= 0:
            raise ValueError("FIFO capacity must be positive")
        self.capacity = capacity
        self._items = deque()
        self._data_written = self.sim.event(f"{self.name}.data_written")
        self._data_read = self.sim.event(f"{self.name}.data_read")

    # -- write side -------------------------------------------------------------
    def put(self, item):
        """Blocking put: waits while the FIFO is full."""
        while len(self._items) >= self.capacity:
            yield self._data_read
        self._items.append(item)
        self._data_written.notify(0)

    def try_put(self, item) -> bool:
        """Non-blocking put: returns ``False`` when the FIFO is full."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self._data_written.notify(0)
        return True

    # -- read side -----------------------------------------------------------------
    def get(self):
        """Blocking get: waits while the FIFO is empty, returns the item."""
        while not self._items:
            yield self._data_written
        item = self._items.popleft()
        self._data_read.notify(0)
        return item

    def try_get(self):
        """Non-blocking get: returns ``(True, item)`` or ``(False, None)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._data_read.notify(0)
        return True, item

    # -- introspection ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    def __repr__(self):
        return f"Fifo({self.name!r}, {len(self)}/{self.capacity})"
