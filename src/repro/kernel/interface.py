"""Abstract interfaces, the equivalent of ``sc_interface``.

The paper's Figure 2 derives the TAM interface from the generic SystemC
interface; this module provides that generic base.  An interface is a plain
Python class whose abstract methods describe the services a channel offers;
ports are parameterised with an interface class and refuse to bind to
channels that do not implement it.
"""

from __future__ import annotations

import inspect
from typing import List


class Interface:
    """Base class for all channel interfaces."""

    @classmethod
    def required_methods(cls) -> List[str]:
        """Names of the methods an implementation must provide.

        Every public method declared on the interface subclass (excluding the
        ones inherited from :class:`Interface` itself) is considered part of
        the contract.
        """
        methods = []
        for name, member in inspect.getmembers(cls, predicate=callable):
            if name.startswith("_"):
                continue
            if hasattr(Interface, name):
                continue
            methods.append(name)
        return sorted(methods)

    @classmethod
    def is_implemented_by(cls, obj) -> bool:
        """Return ``True`` if *obj* provides every method of the interface."""
        if isinstance(obj, cls):
            return True
        return all(callable(getattr(obj, name, None)) for name in cls.required_methods())
