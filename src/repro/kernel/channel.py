"""Channel base classes.

A channel implements one or more interfaces and is the object ports bind to.
Channels that need the evaluate/update delta-cycle mechanism derive from
:class:`PrimitiveChannel` and call :meth:`PrimitiveChannel.request_update`.
"""

from __future__ import annotations

from typing import Union

from repro.kernel.module import Module
from repro.kernel.simulator import Simulator


class Channel(Module):
    """A hierarchical channel: a module that also implements interfaces."""

    def __init__(self, parent: Union[Simulator, Module], name: str):
        super().__init__(parent, name)


class PrimitiveChannel(Channel):
    """A channel taking part in the update phase of the delta cycle."""

    def __init__(self, parent: Union[Simulator, Module], name: str):
        super().__init__(parent, name)
        self._update_requested = False

    def request_update(self) -> None:
        """Ask the kernel to call :meth:`update` in the next update phase."""
        if not self._update_requested:
            self._update_requested = True
            self.sim.request_update(self)

    def update(self) -> None:  # pragma: no cover - overridden by subclasses
        """Apply the pending state change (called by the kernel)."""
        self._update_requested = False
