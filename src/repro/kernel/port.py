"""Ports and exports.

A :class:`Port` is the point through which a module calls into a channel.  It
is parameterised with an :class:`~repro.kernel.interface.Interface` subclass
and must be *bound* to an object implementing that interface before use
(mirroring the SystemC bind mechanism referenced in the paper's Figure 2).
"""

from __future__ import annotations

from typing import Generic, Optional, Type, TypeVar

from repro.kernel.exceptions import BindingError
from repro.kernel.interface import Interface

InterfaceT = TypeVar("InterfaceT", bound=Interface)


class Port(Generic[InterfaceT]):
    """A typed reference to a channel, resolved by :meth:`bind`."""

    def __init__(self, interface: Type[InterfaceT], name: str = "port",
                 owner=None):
        if not (isinstance(interface, type) and issubclass(interface, Interface)):
            raise TypeError("Port expects an Interface subclass")
        self.interface = interface
        self.name = name
        self.owner = owner
        self._channel: Optional[InterfaceT] = None

    # -- binding -------------------------------------------------------------
    def bind(self, channel: InterfaceT) -> None:
        """Bind the port to *channel* (which must implement the interface)."""
        if self._channel is not None:
            raise BindingError(f"port {self.qualified_name!r} is already bound")
        if not self.interface.is_implemented_by(channel):
            raise BindingError(
                f"cannot bind port {self.qualified_name!r}: "
                f"{type(channel).__name__} does not implement "
                f"{self.interface.__name__}"
            )
        self._channel = channel

    @property
    def is_bound(self) -> bool:
        return self._channel is not None

    @property
    def channel(self) -> InterfaceT:
        """The bound channel; raises :class:`BindingError` if unbound."""
        if self._channel is None:
            raise BindingError(f"port {self.qualified_name!r} is not bound")
        return self._channel

    @property
    def qualified_name(self) -> str:
        if self.owner is not None and getattr(self.owner, "name", None):
            return f"{self.owner.name}.{self.name}"
        return self.name

    # -- convenience ----------------------------------------------------------
    def __call__(self) -> InterfaceT:
        """Shorthand used in models: ``self.tam_port().write(...)``."""
        return self.channel

    def __getattr__(self, item):
        # Delegate interface method lookups to the bound channel so models can
        # write ``port.write(...)`` exactly like SystemC's ``port->write(...)``.
        if item.startswith("_"):
            raise AttributeError(item)
        return getattr(self.channel, item)

    def __repr__(self):
        target = type(self._channel).__name__ if self._channel else "<unbound>"
        return f"Port({self.qualified_name!r} -> {target})"


class ExportPort(Port):
    """An export: a port bound by the *providing* module to publish one of its
    own channels to the parent level (``sc_export`` analogue)."""
