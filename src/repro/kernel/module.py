"""Hierarchical modules (the ``sc_module`` analogue)."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.kernel.exceptions import BindingError
from repro.kernel.port import Port
from repro.kernel.process import Process
from repro.kernel.simulator import Simulator


class Module:
    """A named, hierarchical building block owning processes and ports.

    A module is created either directly under a :class:`Simulator` or under a
    parent module, from which it inherits the simulator.  Generator functions
    registered with :meth:`add_thread` become simulation processes scheduled
    for time zero, which matches SystemC's behaviour of starting threads when
    the simulation starts.
    """

    def __init__(self, parent: Union[Simulator, "Module"], name: str):
        if isinstance(parent, Module):
            self.parent: Optional[Module] = parent
            self.sim: Simulator = parent.sim
            parent._children.append(self)
        elif isinstance(parent, Simulator):
            self.parent = None
            self.sim = parent
        else:
            raise TypeError(
                "Module parent must be a Simulator or another Module, got "
                f"{type(parent).__name__}"
            )
        self.basename = name
        self._children: List[Module] = []
        self._ports: List[Port] = []
        self._threads: List[Process] = []

    # -- naming ---------------------------------------------------------------
    @property
    def name(self) -> str:
        """Fully qualified, dot-separated hierarchical name."""
        if self.parent is None:
            return self.basename
        return f"{self.parent.name}.{self.basename}"

    @property
    def children(self) -> List["Module"]:
        return list(self._children)

    # -- ports ------------------------------------------------------------------
    def add_port(self, interface, name: str) -> Port:
        """Create a port owned by this module."""
        port = Port(interface, name=name, owner=self)
        self._ports.append(port)
        return port

    @property
    def ports(self) -> List[Port]:
        return list(self._ports)

    def check_bindings(self) -> None:
        """Verify that every port of this module and its children is bound."""
        unbound = [p.qualified_name for p in self._ports if not p.is_bound]
        if unbound:
            raise BindingError(
                f"module {self.name!r} has unbound ports: {', '.join(unbound)}"
            )
        for child in self._children:
            child.check_bindings()

    # -- processes ------------------------------------------------------------
    def add_thread(self, generator_function, *args, name: str = "", **kwargs) -> Process:
        """Register a generator function as a simulation thread of the module."""
        label = name or getattr(generator_function, "__name__", "thread")
        process = self.sim.spawn(
            generator_function(*args, **kwargs), name=f"{self.name}.{label}"
        )
        self._threads.append(process)
        return process

    @property
    def threads(self) -> List[Process]:
        return list(self._threads)

    # -- utility -----------------------------------------------------------------
    def wait(self, duration):
        """Return a :class:`Timeout` for ``yield self.wait(...)`` in threads."""
        from repro.kernel.event import Timeout

        return Timeout(duration)

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"
