"""Event-driven transaction-level simulation kernel.

This package is the SystemC substitute used throughout the reproduction.  It
provides the small set of primitives the paper relies on:

* simulated time (:mod:`repro.kernel.simtime`),
* events and processes (:mod:`repro.kernel.event`, :mod:`repro.kernel.process`),
* the scheduler itself (:mod:`repro.kernel.simulator`),
* modules, ports, interfaces and channels with an explicit ``bind`` step
  (:mod:`repro.kernel.module`, :mod:`repro.kernel.port`,
  :mod:`repro.kernel.interface`, :mod:`repro.kernel.channel`),
* ready-made channels: FIFOs, signals and clocks,
* transaction tracing used by the monitors in :mod:`repro.dft`.

Blocking behaviour is expressed with generator coroutines: any method that can
consume simulated time is a generator and must be invoked with ``yield from``.
"""

from repro.kernel.exceptions import (
    BindingError,
    KernelError,
    ProcessKilled,
    SimulationFinished,
)
from repro.kernel.simtime import (
    FS,
    MS,
    NS,
    PS,
    SEC,
    US,
    SimTime,
    cycles_to_time,
    time_to_cycles,
)
from repro.kernel.event import Event, Timeout, AnyOf, AllOf
from repro.kernel.process import Process
from repro.kernel.simulator import Simulator
from repro.kernel.interface import Interface
from repro.kernel.port import Port, ExportPort
from repro.kernel.module import Module
from repro.kernel.channel import Channel
from repro.kernel.fifo import Fifo
from repro.kernel.signal import Signal
from repro.kernel.clock import Clock
from repro.kernel.sync import Mutex, Semaphore
from repro.kernel.tracing import TransactionRecord, TransactionTracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BindingError",
    "Channel",
    "Clock",
    "Event",
    "ExportPort",
    "FS",
    "Fifo",
    "Interface",
    "KernelError",
    "MS",
    "Module",
    "Mutex",
    "Semaphore",
    "NS",
    "PS",
    "Port",
    "Process",
    "ProcessKilled",
    "SEC",
    "SimTime",
    "Signal",
    "SimulationFinished",
    "Simulator",
    "Timeout",
    "TransactionRecord",
    "TransactionTracer",
    "US",
    "cycles_to_time",
    "time_to_cycles",
]
