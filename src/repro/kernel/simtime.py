"""Simulated time.

Time is represented as an integer number of femtoseconds wrapped in
:class:`SimTime`.  Integer femtoseconds give exact arithmetic for every clock
period that appears in the models (the paper's SoC runs in the hundreds of MHz
range) while still covering multi-second simulations within 64-bit-friendly
magnitudes.
"""

from __future__ import annotations

import functools
from typing import Union

#: Number of femtoseconds per unit.
FS = 1
PS = 1_000
NS = 1_000_000
US = 1_000_000_000
MS = 1_000_000_000_000
SEC = 1_000_000_000_000_000

_UNIT_NAMES = {
    FS: "fs",
    PS: "ps",
    NS: "ns",
    US: "us",
    MS: "ms",
    SEC: "s",
}


@functools.total_ordering
class SimTime:
    """A point in (or duration of) simulated time.

    ``SimTime`` values are immutable and support addition, subtraction,
    integer multiplication and comparison.  Plain integers are accepted
    wherever a ``SimTime`` is expected and are interpreted as femtoseconds.
    """

    __slots__ = ("femtoseconds",)

    def __init__(self, value: Union[int, float] = 0, unit: int = FS):
        if unit not in _UNIT_NAMES:
            raise ValueError(f"unknown time unit factor: {unit!r}")
        femtoseconds = round(value * unit)
        if femtoseconds < 0:
            raise ValueError("simulated time cannot be negative")
        object.__setattr__(self, "femtoseconds", int(femtoseconds))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("SimTime is immutable")

    def __reduce__(self):
        # The immutability guard breaks the default slot-based pickling, so
        # pickle through the constructor (campaign workers ship results that
        # contain SimTime values across process boundaries).
        return (SimTime, (self.femtoseconds, FS))

    # -- conversions -------------------------------------------------------
    @classmethod
    def coerce(cls, value: Union["SimTime", int, float]) -> "SimTime":
        """Return *value* as a :class:`SimTime` (integers are femtoseconds)."""
        if isinstance(value, SimTime):
            return value
        return cls(value, FS)

    def to(self, unit: int) -> float:
        """Return the time expressed in *unit* (e.g. ``NS``) as a float."""
        if unit not in _UNIT_NAMES:
            raise ValueError(f"unknown time unit factor: {unit!r}")
        return self.femtoseconds / unit

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other):
        other = SimTime.coerce(other)
        return SimTime(self.femtoseconds + other.femtoseconds, FS)

    __radd__ = __add__

    def __sub__(self, other):
        other = SimTime.coerce(other)
        return SimTime(self.femtoseconds - other.femtoseconds, FS)

    def __mul__(self, factor: int):
        if not isinstance(factor, int):
            raise TypeError("SimTime can only be multiplied by an integer")
        return SimTime(self.femtoseconds * factor, FS)

    __rmul__ = __mul__

    def __floordiv__(self, other):
        other = SimTime.coerce(other)
        if other.femtoseconds == 0:
            raise ZeroDivisionError("division by zero SimTime")
        return self.femtoseconds // other.femtoseconds

    # -- comparisons -------------------------------------------------------
    def __eq__(self, other):
        if isinstance(other, (SimTime, int, float)):
            return self.femtoseconds == SimTime.coerce(other).femtoseconds
        return NotImplemented

    def __lt__(self, other):
        return self.femtoseconds < SimTime.coerce(other).femtoseconds

    def __hash__(self):
        return hash(self.femtoseconds)

    def __bool__(self):
        return self.femtoseconds != 0

    # -- display -----------------------------------------------------------
    def __repr__(self):
        return f"SimTime({self.femtoseconds} fs)"

    def __str__(self):
        value = self.femtoseconds
        for unit in (SEC, MS, US, NS, PS):
            if value >= unit and value % unit == 0:
                return f"{value // unit} {_UNIT_NAMES[unit]}"
        return f"{value} fs"


#: The zero duration, reused all over the kernel.
ZERO_TIME = SimTime(0)


def cycles_to_time(cycles: int, period: Union[SimTime, int]) -> SimTime:
    """Return the duration of *cycles* clock cycles of the given *period*."""
    if cycles < 0:
        raise ValueError("cycle count cannot be negative")
    period = SimTime.coerce(period)
    return SimTime(cycles * period.femtoseconds, FS)


def time_to_cycles(duration: Union[SimTime, int], period: Union[SimTime, int]) -> int:
    """Return how many full clock cycles of *period* fit into *duration*."""
    duration = SimTime.coerce(duration)
    period = SimTime.coerce(period)
    if period.femtoseconds <= 0:
        raise ValueError("clock period must be positive")
    return duration.femtoseconds // period.femtoseconds
