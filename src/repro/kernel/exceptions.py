"""Exception hierarchy of the simulation kernel."""


class KernelError(Exception):
    """Base class for all kernel-level errors."""


class BindingError(KernelError):
    """Raised when a port is used before it has been bound, is bound twice,
    or is bound to a channel that does not implement its interface."""


class ElaborationError(KernelError):
    """Raised when the module hierarchy cannot be elaborated."""


class SchedulingError(KernelError):
    """Raised when an event or process is scheduled inconsistently
    (for example a negative delay)."""


class SimulationFinished(KernelError):
    """Raised inside a process when the simulation is stopped while the
    process is still waiting."""


class ProcessKilled(KernelError):
    """Raised inside a process generator when it is killed explicitly."""


class DeadlockError(KernelError):
    """Raised by :meth:`repro.kernel.simulator.Simulator.run` when
    ``run(until=...)`` is asked to make progress but no event is pending."""
