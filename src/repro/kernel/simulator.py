"""The discrete-event scheduler.

The kernel uses a hybrid three-tier event store instead of a single binary
heap:

* a **deque fast lane** for activations at the current timestamp (delta
  cycles and zero-delay notifications join the running drain in O(1) with no
  comparisons at all),
* a **hashed timing wheel** for near-future activations: one bucket per
  exact timestamp, rotated by a min-heap of *integer* bucket times.  Pushing
  into an existing bucket is a dict hit plus a list append; the heap is only
  touched once per distinct timestamp, so clock-period-sized Timeouts — the
  dominant event class of the TLM models — cost O(1) amortized instead of
  O(log n) Python-level entry comparisons,
* a **far-future overflow heap** for entries beyond the wheel horizon, which
  keeps the bucket-time heap small when a model schedules sparse long-range
  events.  The horizon advances (and overflow entries cascade into buckets)
  only when the near store drains.

Determinism is bit-identical to the heap scheduler it replaced: entries carry
a global sequence number, buckets are appended to in sequence order, and the
overflow heap orders ties by sequence, so simultaneous activations always run
in exact FIFO-per-timestamp order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, List, Optional, Union

from repro.kernel.event import Event
from repro.kernel.exceptions import DeadlockError, SchedulingError
from repro.kernel.process import Process
from repro.kernel.simtime import SimTime


class _QueueEntry:
    """An entry in the event store.

    Entries are ordered by time first and by insertion order second so that
    simultaneous activations run in a deterministic (FIFO) order.
    """

    __slots__ = ("time_fs", "sequence", "action", "value", "cancelled")

    def __init__(self, time_fs: int, sequence: int, action, value):
        self.time_fs = time_fs
        self.sequence = sequence
        self.action = action
        self.value = value
        self.cancelled = False

    def __lt__(self, other):
        if self.time_fs != other.time_fs:
            return self.time_fs < other.time_fs
        return self.sequence < other.sequence


class Simulator:
    """Event-driven simulation kernel.

    Two kinds of actions are scheduled: process resumptions and plain
    callbacks (used for delayed event notifications and primitive updates).
    An *update phase* modelled after SystemC's evaluate/update delta cycle is
    run whenever all activations at the current timestamp have been processed.

    Cancelled entries are deleted lazily: :meth:`cancel` only marks the entry
    and the event store is compacted once cancelled entries outnumber live
    ones, so long-running campaigns do not accumulate dead objects.
    """

    #: Event-store size below which cancellation never triggers a compaction
    #: (the rebuild would cost more than it frees).
    _COMPACT_MIN_QUEUE = 64

    #: Width of the timing wheel's near-future window.  Entries scheduled
    #: beyond ``now + span`` overflow into the far-future heap and cascade
    #: into wheel buckets as the horizon advances.  2**44 fs ~ 17.6 ms of
    #: simulated time — generous for clock-period-sized delays.
    _WHEEL_SPAN_FS = 1 << 44

    def __init__(self, name: str = "sim"):
        self.name = name
        #: Fast lane: activations at the timestamp currently being drained.
        self._lane = deque()
        self._lane_time = -1
        #: Timing wheel: exact-timestamp buckets plus their rotation heap.
        self._buckets = {}
        self._bucket_times: List[int] = []
        #: Far-future overflow (beyond the wheel horizon).
        self._far: List[_QueueEntry] = []
        self._horizon = self._WHEEL_SPAN_FS
        #: Total entries across all three tiers, including cancelled ones.
        self._entry_count = 0
        self._sequence = 0
        self._now_fs = 0
        self._running = False
        self._processes: List[Process] = []
        self._update_requests = []
        self._failures = []
        self._pending_count = 0
        self._cancelled_count = 0
        self.trace_hooks: List[Callable] = []
        #: Number of queue entries processed so far (for performance studies).
        self.dispatched_activations = 0

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time."""
        return SimTime(self._now_fs)

    @property
    def now_fs(self) -> int:
        """Current simulated time in femtoseconds (fast path for channels)."""
        return self._now_fs

    # -- scheduling ------------------------------------------------------------
    def _push(self, delay, action, value=None) -> _QueueEntry:
        # Hot path: delays arrive either as SimTime (Timeout durations) or as
        # plain integer femtoseconds (delta cycles); avoid SimTime.coerce and
        # the temporary object for both.
        if type(delay) is SimTime:
            delay_fs = delay.femtoseconds
        elif type(delay) is int:
            if delay < 0:
                # Same error type/message as the SimTime constructor raises.
                raise ValueError("simulated time cannot be negative")
            delay_fs = delay
        else:
            delay_fs = SimTime.coerce(delay).femtoseconds
        time_fs = self._now_fs + delay_fs
        entry = _QueueEntry(time_fs, self._sequence, action, value)
        self._sequence += 1
        self._pending_count += 1
        self._entry_count += 1
        if time_fs == self._lane_time:
            # Delta activation at the timestamp being drained: join the
            # running drain through the fast lane (no heap, no comparisons).
            self._lane.append(entry)
        elif time_fs < self._horizon:
            buckets = self._buckets
            bucket = buckets.get(time_fs)
            if bucket is None:
                buckets[time_fs] = [entry]
                heapq.heappush(self._bucket_times, time_fs)
            else:
                bucket.append(entry)
        else:
            heapq.heappush(self._far, entry)
        return entry

    def schedule_process(self, process: Process, delay=0, value=None) -> _QueueEntry:
        """Schedule *process* to resume after *delay*."""
        return self._push(delay, process, value)

    def schedule_callback(self, callback: Callable, delay=0) -> _QueueEntry:
        """Schedule a plain callable to run after *delay*."""
        if not callable(callback):
            raise SchedulingError("schedule_callback expects a callable")
        return self._push(delay, callback)

    def cancel(self, entry: _QueueEntry) -> bool:
        """Cancel a scheduled entry returned by one of the ``schedule_*``
        methods.

        Returns ``True`` if the entry was still pending.  The entry stays in
        the event store (lazy deletion) but releases its action and value;
        once cancelled entries outnumber live ones the store is compacted in
        one pass, so cancellation-heavy workloads stay O(live entries) in
        memory.
        """
        if entry.cancelled:
            return False
        entry.cancelled = True
        entry.action = None
        entry.value = None
        self._pending_count -= 1
        self._cancelled_count += 1
        if (self._entry_count >= self._COMPACT_MIN_QUEUE
                and self._cancelled_count * 2 > self._entry_count):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop cancelled entries from all tiers in one pass.

        The fast lane is filtered in place: ``run()`` drains it with
        ``popleft``, so a cancellation from inside a dispatched action must
        not strand the running drain on a stale deque.
        """
        # All three tiers are mutated in place: the run() drain holds local
        # aliases to them, and a cancellation from inside a dispatched action
        # must not strand the running drain on stale containers.
        lane = self._lane
        if lane:
            live = [entry for entry in lane if not entry.cancelled]
            lane.clear()
            lane.extend(live)
        buckets = self._buckets
        survivors = {}
        for time_fs, entries in buckets.items():
            live = [entry for entry in entries if not entry.cancelled]
            if live:
                survivors[time_fs] = live
        buckets.clear()
        buckets.update(survivors)
        self._bucket_times[:] = buckets
        heapq.heapify(self._bucket_times)
        self._far[:] = [entry for entry in self._far if not entry.cancelled]
        heapq.heapify(self._far)
        self._entry_count = (len(lane) + len(self._far)
                             + sum(len(entries) for entries in buckets.values()))
        self._cancelled_count = 0

    def _cascade_far(self) -> None:
        """Advance the wheel horizon and move matured overflow entries into
        buckets.  Called only when the lane and the wheel are empty, so the
        migrated entries (popped in (time, sequence) order) seed fresh
        buckets in FIFO order."""
        far = self._far
        self._horizon = far[0].time_fs + self._WHEEL_SPAN_FS
        buckets = self._buckets
        bucket_times = self._bucket_times
        horizon = self._horizon
        while far and far[0].time_fs < horizon:
            entry = heapq.heappop(far)
            bucket = buckets.get(entry.time_fs)
            if bucket is None:
                buckets[entry.time_fs] = [entry]
                heapq.heappush(bucket_times, entry.time_fs)
            else:
                bucket.append(entry)

    @property
    def _queue(self) -> List[_QueueEntry]:
        """Flat view of every entry still in the event store (incl. lazily
        deleted ones), for introspection and the kernel edge-case tests."""
        entries = list(self._lane)
        for time_fs in sorted(self._buckets):
            entries.extend(self._buckets[time_fs])
        entries.extend(sorted(self._far))
        return entries

    def request_update(self, primitive) -> None:
        """Request that ``primitive.update()`` runs in the next update phase."""
        self._update_requests.append(primitive)

    # -- processes -------------------------------------------------------------
    def spawn(self, generator, name: str = "") -> Process:
        """Create a process from *generator* and schedule its first activation."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        self.schedule_process(process, 0)
        return process

    def event(self, name: str = "") -> Event:
        """Create an event attached to this simulator."""
        return Event(self, name=name)

    def process_terminated(self, process: Process) -> None:
        """Hook called by :class:`Process` when it finishes."""
        # Processes stay in the list for introspection; nothing to do here.

    def report_process_failure(self, process: Process, exc: Exception) -> None:
        """Record an exception escaping a process and re-raise it at run()."""
        self._failures.append((process, exc))

    @property
    def processes(self) -> List[Process]:
        return list(self._processes)

    # -- execution ---------------------------------------------------------------
    def _run_update_phase(self) -> None:
        requests, self._update_requests = self._update_requests, []
        for primitive in requests:
            primitive.update()

    def run(self, until: Optional[Union[SimTime, int]] = None) -> SimTime:
        """Run the simulation.

        Without *until* the simulation runs until the event queue drains.
        With *until* it runs up to and including that absolute time and raises
        :class:`DeadlockError` if asked to reach a time for which no activity
        is pending at all.
        """
        limit_fs = None if until is None else SimTime.coerce(until).femtoseconds
        if (limit_fs is not None and not self._entry_count
                and not self._update_requests):
            raise DeadlockError("nothing is scheduled; simulation cannot advance")
        self._running = True
        # The drain below is the hottest loop of the whole stack, so the
        # three tiers (and a few bound methods) are aliased into locals.
        # _compact() and _cascade_far() mutate the containers in place, which
        # keeps these aliases valid across compactions mid-drain.
        lane = self._lane
        lane_popleft = lane.popleft
        buckets = self._buckets
        bucket_times = self._bucket_times
        failures = self._failures
        process_class = Process
        heappop = heapq.heappop
        dispatched = 0
        try:
            while self._entry_count or self._update_requests:
                # Earliest pending timestamp across the three tiers (the fast
                # lane is only non-empty here when a previous run() aborted
                # mid-drain with an exception).
                if lane:
                    next_time = self._lane_time
                else:
                    next_time = None
                    while bucket_times:
                        time_fs = bucket_times[0]
                        if time_fs in buckets:
                            next_time = time_fs
                            break
                        heappop(bucket_times)  # stale: bucket already drained
                    if next_time is None:
                        if self._far:
                            self._cascade_far()
                            next_time = bucket_times[0]
                        else:
                            next_time = self._now_fs  # update requests only
                if limit_fs is not None and next_time > limit_fs:
                    self._now_fs = limit_fs
                    break
                self._now_fs = next_time
                # Pull the wheel bucket for this timestamp into the fast
                # lane; delta entries pushed during the drain join it there.
                bucket = buckets.pop(next_time, None)
                if bucket is not None:
                    lane.extend(bucket)
                self._lane_time = next_time
                # Evaluate phase: drain the slot of activations at the current
                # timestamp in FIFO order.  The dispatch counter accumulates
                # in a local and is folded back in the finally block so that
                # an exception escaping an action does not lose the batch.
                while lane:
                    entry = lane_popleft()
                    self._entry_count -= 1
                    if entry.cancelled:
                        self._cancelled_count -= 1
                        continue
                    self._pending_count -= 1
                    dispatched += 1
                    action = entry.action
                    value = entry.value
                    # Mark the entry consumed so a late cancel() (e.g. a
                    # timeout-vs-event race) is a no-op instead of corrupting
                    # the counters of an entry no longer in the store.
                    entry.cancelled = True
                    if action.__class__ is process_class:
                        action.resume(value)
                    elif isinstance(action, process_class):
                        action.resume(value)
                    else:
                        action()
                    if failures:
                        self._raise_pending_failure()
                self._lane_time = -1
                # Fold the slot's dispatch count back per timestamp so that
                # instrumentation reading the counter mid-run sees progress;
                # the finally below only covers an exception mid-slot.
                self.dispatched_activations += dispatched
                dispatched = 0
                # Update phase (may schedule new delta activations at now).
                if self._update_requests:
                    self._run_update_phase()
                    if failures:
                        self._raise_pending_failure()
        finally:
            self.dispatched_activations += dispatched
            self._lane_time = self._lane_time if lane else -1
            self._running = False
        return self.now

    def _raise_pending_failure(self) -> None:
        if self._failures:
            process, exc = self._failures.pop(0)
            raise RuntimeError(
                f"process {process.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc

    @property
    def pending_activations(self) -> int:
        """Number of not-yet-dispatched entries in the event store (O(1))."""
        return self._pending_count

    def __repr__(self):
        return (
            f"Simulator({self.name!r}, now={self.now}, "
            f"pending={self.pending_activations})"
        )
