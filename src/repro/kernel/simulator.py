"""The discrete-event scheduler."""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Union

from repro.kernel.event import Event
from repro.kernel.exceptions import DeadlockError, SchedulingError
from repro.kernel.process import Process
from repro.kernel.simtime import SimTime


class _QueueEntry:
    """An entry in the central event queue.

    Entries are ordered by time first and by insertion order second so that
    simultaneous activations run in a deterministic (FIFO) order.
    """

    __slots__ = ("time_fs", "sequence", "action", "value", "cancelled")

    def __init__(self, time_fs: int, sequence: int, action, value):
        self.time_fs = time_fs
        self.sequence = sequence
        self.action = action
        self.value = value
        self.cancelled = False

    def __lt__(self, other):
        if self.time_fs != other.time_fs:
            return self.time_fs < other.time_fs
        return self.sequence < other.sequence


class Simulator:
    """Event-driven simulation kernel.

    The kernel keeps a single binary-heap event queue.  Two kinds of actions
    are scheduled on it: process resumptions and plain callbacks (used for
    delayed event notifications and primitive updates).  An *update phase*
    modelled after SystemC's evaluate/update delta cycle is run whenever all
    activations at the current timestamp have been processed.

    Cancelled entries are deleted lazily: :meth:`cancel` only marks the entry
    and the heap is compacted once cancelled entries outnumber live ones, so
    long-running campaigns do not accumulate dead objects.
    """

    #: Queue size below which cancellation never triggers a compaction (the
    #: rebuild would cost more than it frees).
    _COMPACT_MIN_QUEUE = 64

    def __init__(self, name: str = "sim"):
        self.name = name
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self._now_fs = 0
        self._running = False
        self._processes: List[Process] = []
        self._update_requests = []
        self._failures = []
        self._pending_count = 0
        self._cancelled_count = 0
        self.trace_hooks: List[Callable] = []
        #: Number of queue entries processed so far (for performance studies).
        self.dispatched_activations = 0

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time."""
        return SimTime(self._now_fs)

    @property
    def now_fs(self) -> int:
        """Current simulated time in femtoseconds (fast path for channels)."""
        return self._now_fs

    # -- scheduling ------------------------------------------------------------
    def _push(self, delay, action, value=None) -> _QueueEntry:
        # Hot path: delays arrive either as SimTime (Timeout durations) or as
        # plain integer femtoseconds (delta cycles); avoid SimTime.coerce and
        # the temporary object for both.
        if type(delay) is SimTime:
            delay_fs = delay.femtoseconds
        elif type(delay) is int:
            if delay < 0:
                # Same error type/message as the SimTime constructor raises.
                raise ValueError("simulated time cannot be negative")
            delay_fs = delay
        else:
            delay_fs = SimTime.coerce(delay).femtoseconds
        entry = _QueueEntry(self._now_fs + delay_fs, self._sequence, action, value)
        self._sequence += 1
        self._pending_count += 1
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_process(self, process: Process, delay=0, value=None) -> _QueueEntry:
        """Schedule *process* to resume after *delay*."""
        return self._push(delay, process, value)

    def schedule_callback(self, callback: Callable, delay=0) -> _QueueEntry:
        """Schedule a plain callable to run after *delay*."""
        if not callable(callback):
            raise SchedulingError("schedule_callback expects a callable")
        return self._push(delay, callback)

    def cancel(self, entry: _QueueEntry) -> bool:
        """Cancel a scheduled entry returned by one of the ``schedule_*``
        methods.

        Returns ``True`` if the entry was still pending.  The entry stays in
        the heap (lazy deletion) but releases its action and value; once
        cancelled entries outnumber live ones the queue is compacted in one
        pass, so cancellation-heavy workloads stay O(live entries) in memory.
        """
        if entry.cancelled:
            return False
        entry.cancelled = True
        entry.action = None
        entry.value = None
        self._pending_count -= 1
        self._cancelled_count += 1
        if (len(self._queue) >= self._COMPACT_MIN_QUEUE
                and self._cancelled_count * 2 > len(self._queue)):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap in one pass.

        Mutates the list in place: ``run()`` holds an alias to the queue, and
        a cancellation from inside a dispatched action must not strand the
        running drain on a stale list.
        """
        self._queue[:] = [entry for entry in self._queue if not entry.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_count = 0

    def request_update(self, primitive) -> None:
        """Request that ``primitive.update()`` runs in the next update phase."""
        self._update_requests.append(primitive)

    # -- processes -------------------------------------------------------------
    def spawn(self, generator, name: str = "") -> Process:
        """Create a process from *generator* and schedule its first activation."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        self.schedule_process(process, 0)
        return process

    def event(self, name: str = "") -> Event:
        """Create an event attached to this simulator."""
        return Event(self, name=name)

    def process_terminated(self, process: Process) -> None:
        """Hook called by :class:`Process` when it finishes."""
        # Processes stay in the list for introspection; nothing to do here.

    def report_process_failure(self, process: Process, exc: Exception) -> None:
        """Record an exception escaping a process and re-raise it at run()."""
        self._failures.append((process, exc))

    @property
    def processes(self) -> List[Process]:
        return list(self._processes)

    # -- execution ---------------------------------------------------------------
    def _run_update_phase(self) -> None:
        requests, self._update_requests = self._update_requests, []
        for primitive in requests:
            primitive.update()

    def run(self, until: Optional[Union[SimTime, int]] = None) -> SimTime:
        """Run the simulation.

        Without *until* the simulation runs until the event queue drains.
        With *until* it runs up to and including that absolute time and raises
        :class:`DeadlockError` if asked to reach a time for which no activity
        is pending at all.
        """
        limit_fs = None if until is None else SimTime.coerce(until).femtoseconds
        if limit_fs is not None and not self._queue and not self._update_requests:
            raise DeadlockError("nothing is scheduled; simulation cannot advance")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        process_class = Process
        try:
            while queue or self._update_requests:
                if queue:
                    next_time = queue[0].time_fs
                else:
                    next_time = self._now_fs
                if limit_fs is not None and next_time > limit_fs:
                    self._now_fs = limit_fs
                    break
                self._now_fs = next_time
                # Evaluate phase: drain the slot of activations at the current
                # timestamp in FIFO order.  Dispatching may push new delta
                # entries at the same timestamp; they join the same drain.
                # The dispatch counter is accumulated locally and folded back
                # in the finally block so that an exception escaping an action
                # does not lose the batch.
                dispatched = 0
                try:
                    while queue and queue[0].time_fs == next_time:
                        entry = heappop(queue)
                        if entry.cancelled:
                            self._cancelled_count -= 1
                            continue
                        self._pending_count -= 1
                        dispatched += 1
                        action = entry.action
                        value = entry.value
                        # Mark the entry consumed so a late cancel() (e.g. a
                        # timeout-vs-event race) is a no-op instead of
                        # corrupting the counters of an entry no longer in
                        # the heap.
                        entry.cancelled = True
                        if isinstance(action, process_class):
                            action.resume(value)
                        else:
                            action()
                        if self._failures:
                            self._raise_pending_failure()
                finally:
                    self.dispatched_activations += dispatched
                # Update phase (may schedule new delta activations at now).
                if self._update_requests:
                    self._run_update_phase()
                    if self._failures:
                        self._raise_pending_failure()
        finally:
            self._running = False
        return self.now

    def _raise_pending_failure(self) -> None:
        if self._failures:
            process, exc = self._failures.pop(0)
            raise RuntimeError(
                f"process {process.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc

    @property
    def pending_activations(self) -> int:
        """Number of not-yet-dispatched entries in the event queue (O(1))."""
        return self._pending_count

    def __repr__(self):
        return (
            f"Simulator({self.name!r}, now={self.now}, "
            f"pending={self.pending_activations})"
        )
