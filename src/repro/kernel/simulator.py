"""The discrete-event scheduler."""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Union

from repro.kernel.event import Event
from repro.kernel.exceptions import DeadlockError, SchedulingError
from repro.kernel.process import Process
from repro.kernel.simtime import SimTime


class _QueueEntry:
    """An entry in the central event queue.

    Entries are ordered by time first and by insertion order second so that
    simultaneous activations run in a deterministic (FIFO) order.
    """

    __slots__ = ("time_fs", "sequence", "action", "value", "cancelled")

    def __init__(self, time_fs: int, sequence: int, action, value):
        self.time_fs = time_fs
        self.sequence = sequence
        self.action = action
        self.value = value
        self.cancelled = False

    def __lt__(self, other):
        if self.time_fs != other.time_fs:
            return self.time_fs < other.time_fs
        return self.sequence < other.sequence


class Simulator:
    """Event-driven simulation kernel.

    The kernel keeps a single binary-heap event queue.  Two kinds of actions
    are scheduled on it: process resumptions and plain callbacks (used for
    delayed event notifications and primitive updates).  An *update phase*
    modelled after SystemC's evaluate/update delta cycle is run whenever all
    activations at the current timestamp have been processed.
    """

    def __init__(self, name: str = "sim"):
        self.name = name
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self._now_fs = 0
        self._running = False
        self._processes: List[Process] = []
        self._update_requests = []
        self._failures = []
        self.trace_hooks: List[Callable] = []
        #: Number of queue entries processed so far (for performance studies).
        self.dispatched_activations = 0

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time."""
        return SimTime(self._now_fs)

    @property
    def now_fs(self) -> int:
        """Current simulated time in femtoseconds (fast path for channels)."""
        return self._now_fs

    # -- scheduling ------------------------------------------------------------
    def _push(self, delay, action, value=None) -> _QueueEntry:
        delay = SimTime.coerce(delay)
        entry = _QueueEntry(
            self._now_fs + delay.femtoseconds, self._sequence, action, value
        )
        self._sequence += 1
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_process(self, process: Process, delay=0, value=None) -> _QueueEntry:
        """Schedule *process* to resume after *delay*."""
        return self._push(delay, process, value)

    def schedule_callback(self, callback: Callable, delay=0) -> _QueueEntry:
        """Schedule a plain callable to run after *delay*."""
        if not callable(callback):
            raise SchedulingError("schedule_callback expects a callable")
        return self._push(delay, callback)

    def request_update(self, primitive) -> None:
        """Request that ``primitive.update()`` runs in the next update phase."""
        self._update_requests.append(primitive)

    # -- processes -------------------------------------------------------------
    def spawn(self, generator, name: str = "") -> Process:
        """Create a process from *generator* and schedule its first activation."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        self.schedule_process(process, 0)
        return process

    def event(self, name: str = "") -> Event:
        """Create an event attached to this simulator."""
        return Event(self, name=name)

    def process_terminated(self, process: Process) -> None:
        """Hook called by :class:`Process` when it finishes."""
        # Processes stay in the list for introspection; nothing to do here.

    def report_process_failure(self, process: Process, exc: Exception) -> None:
        """Record an exception escaping a process and re-raise it at run()."""
        self._failures.append((process, exc))

    @property
    def processes(self) -> List[Process]:
        return list(self._processes)

    # -- execution ---------------------------------------------------------------
    def _dispatch(self, entry: _QueueEntry) -> None:
        self.dispatched_activations += 1
        action = entry.action
        if isinstance(action, Process):
            action.resume(entry.value)
        else:
            action()

    def _run_update_phase(self) -> None:
        requests, self._update_requests = self._update_requests, []
        for primitive in requests:
            primitive.update()

    def run(self, until: Optional[Union[SimTime, int]] = None) -> SimTime:
        """Run the simulation.

        Without *until* the simulation runs until the event queue drains.
        With *until* it runs up to and including that absolute time and raises
        :class:`DeadlockError` if asked to reach a time for which no activity
        is pending at all.
        """
        limit_fs = None if until is None else SimTime.coerce(until).femtoseconds
        if limit_fs is not None and not self._queue and not self._update_requests:
            raise DeadlockError("nothing is scheduled; simulation cannot advance")
        self._running = True
        try:
            while self._queue or self._update_requests:
                if self._queue:
                    next_time = self._queue[0].time_fs
                else:
                    next_time = self._now_fs
                if limit_fs is not None and next_time > limit_fs:
                    self._now_fs = limit_fs
                    break
                self._now_fs = next_time
                # Evaluate phase: all activations at the current timestamp.
                while self._queue and self._queue[0].time_fs == self._now_fs:
                    entry = heapq.heappop(self._queue)
                    if not entry.cancelled:
                        self._dispatch(entry)
                    self._raise_pending_failure()
                # Update phase (may schedule new delta activations at now).
                if self._update_requests:
                    self._run_update_phase()
                    self._raise_pending_failure()
        finally:
            self._running = False
        return self.now

    def _raise_pending_failure(self) -> None:
        if self._failures:
            process, exc = self._failures.pop(0)
            raise RuntimeError(
                f"process {process.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc

    @property
    def pending_activations(self) -> int:
        """Number of not-yet-dispatched entries in the event queue."""
        return sum(1 for entry in self._queue if not entry.cancelled)

    def __repr__(self):
        return (
            f"Simulator({self.name!r}, now={self.now}, "
            f"pending={self.pending_activations})"
        )
