"""Generator-coroutine simulation processes (the ``SC_THREAD`` substitute)."""

from __future__ import annotations

import types
from typing import TYPE_CHECKING, Optional

from repro.kernel.event import AllOf, AnyOf, Event, Timeout
from repro.kernel.exceptions import KernelError, ProcessKilled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.simulator import Simulator


class Process:
    """A simulation process wrapping a generator.

    The generator drives the process: every ``yield`` suspends it until the
    yielded condition (a :class:`~repro.kernel.event.Timeout`, an
    :class:`~repro.kernel.event.Event`, a composite, or another process to
    join) is satisfied.  The value sent back into the generator is the
    notification value of the event that woke the process (``None`` for
    timeouts).
    """

    def __init__(self, sim: "Simulator", generator, name: str = ""):
        if not isinstance(generator, types.GeneratorType):
            raise TypeError(
                "Process expects a generator object; got "
                f"{type(generator).__name__} (did you forget to call the "
                "generator function?)"
            )
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.alive = True
        self.result = None
        self.exception: Optional[BaseException] = None
        #: Event notified when the process terminates (used by joins).
        self.finished = Event(sim, name=f"{self.name}.finished")
        #: Events this process is currently registered with (for composite
        #: waits the process may be registered with several at once).
        self._subscriptions = []

    # -- subscription management -------------------------------------------
    def subscribe(self, event: Event) -> None:
        event.add_waiter(self)
        self._subscriptions.append(event)

    def unsubscribe_all(self) -> None:
        for event in self._subscriptions:
            event.remove_waiter(self)
        self._subscriptions = []

    # -- execution ----------------------------------------------------------
    def resume(self, value=None, exception: Optional[BaseException] = None) -> None:
        """Advance the generator until its next suspension point."""
        if not self.alive:
            return
        try:
            if exception is not None:
                condition = self.generator.throw(exception)
            else:
                condition = self.generator.send(value)
        except StopIteration as stop:
            self._terminate(result=stop.value)
            return
        except ProcessKilled:
            self._terminate(result=None)
            return
        except Exception as exc:  # surface model bugs to the kernel
            self.exception = exc
            self._terminate(result=None)
            self.sim.report_process_failure(self, exc)
            return
        # Hot path: Timeout waits and bare yields dominate every timed model,
        # so handle them inline and fall back to _suspend_on for the rest.
        if type(condition) is Timeout:
            self.sim._push(condition.duration, self)
        elif condition is None:
            self.sim._push(0, self)
        else:
            self._suspend_on(condition)

    def _suspend_on(self, condition) -> None:
        if condition is None:
            # Bare ``yield`` waits for the next delta cycle.
            self.sim.schedule_process(self, 0)
        elif isinstance(condition, Timeout):
            self.sim.schedule_process(self, condition.duration)
        elif isinstance(condition, Event):
            self.subscribe(condition)
        elif isinstance(condition, AnyOf):
            for event in condition.events:
                self.subscribe(event)
        elif isinstance(condition, AllOf):
            self._wait_all(condition)
        elif isinstance(condition, Process):
            if condition.alive:
                self.subscribe(condition.finished)
            else:
                self.sim.schedule_process(self, 0, condition.result)
        else:
            raise KernelError(
                f"process {self.name!r} yielded an unsupported object: "
                f"{condition!r}"
            )

    def _wait_all(self, condition: AllOf) -> None:
        pending = {id(event) for event in condition.events}

        def make_callback(event):
            def callback(_value, _event_id=id(event)):
                if not self.alive or _event_id not in pending:
                    return
                pending.discard(_event_id)
                if not pending:
                    self.sim.schedule_process(self, 0)

            return callback

        for event in condition.events:
            event.add_callback(make_callback(event))

    def _terminate(self, result) -> None:
        self.alive = False
        self.result = result
        self.unsubscribe_all()
        self.finished.sim = self.finished.sim or self.sim
        self.finished.notify(0, value=result)
        self.sim.process_terminated(self)

    def kill(self) -> None:
        """Terminate the process at its current suspension point."""
        if not self.alive:
            return
        self.unsubscribe_all()
        try:
            self.generator.close()
        except Exception:  # pragma: no cover - defensive
            pass
        self._terminate(result=None)

    def __repr__(self):
        state = "alive" if self.alive else "finished"
        return f"Process({self.name!r}, {state})"
