"""Signals with evaluate/update semantics (``sc_signal`` analogue)."""

from __future__ import annotations

from typing import Union

from repro.kernel.channel import PrimitiveChannel
from repro.kernel.interface import Interface
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator


class SignalReadInterface(Interface):
    def read(self):  # pragma: no cover - interface declaration
        raise NotImplementedError


class SignalWriteInterface(Interface):
    def write(self, value):  # pragma: no cover - interface declaration
        raise NotImplementedError


class Signal(PrimitiveChannel, SignalReadInterface, SignalWriteInterface):
    """A single-driver signal.

    Writes take effect in the update phase of the current delta cycle, so all
    processes that read the signal during the evaluate phase observe the old
    value — the standard RTL-style semantics.
    """

    def __init__(self, parent: Union[Simulator, Module], name: str, initial=0):
        super().__init__(parent, name)
        self._current = initial
        self._next = initial
        self.value_changed = self.sim.event(f"{self.name}.value_changed")

    def read(self):
        """Current (settled) value of the signal."""
        return self._current

    def write(self, value) -> None:
        """Schedule *value* to become visible in the next delta cycle."""
        self._next = value
        self.request_update()

    def update(self) -> None:
        self._update_requested = False
        if self._next != self._current:
            self._current = self._next
            self.value_changed.notify(0, value=self._current)

    def __repr__(self):
        return f"Signal({self.name!r}, value={self._current!r})"
