"""Events and waitable condition objects.

Processes suspend themselves by ``yield``-ing one of the objects defined in
this module:

* :class:`Timeout` -- resume after a fixed amount of simulated time,
* :class:`Event` -- resume when the event is notified,
* :class:`AnyOf` / :class:`AllOf` -- composite waits on several events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Union

from repro.kernel.exceptions import SchedulingError
from repro.kernel.simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.process import Process
    from repro.kernel.simulator import Simulator


class Timeout:
    """A relative wait for a fixed duration of simulated time."""

    __slots__ = ("duration",)

    def __init__(self, duration: Union[SimTime, int]):
        # Hot path: Timeouts are created once per clocked wait, so skip the
        # coerce() call for the common case of an existing SimTime.
        if type(duration) is SimTime:
            self.duration = duration
        else:
            self.duration = SimTime.coerce(duration)

    def __repr__(self):
        return f"Timeout({self.duration})"


class Event:
    """A notifiable event, analogous to ``sc_event``.

    Processes wait on an event by yielding it; :meth:`notify` wakes every
    process that is waiting at the moment the notification matures.  A
    notification can be immediate (same timestamp, next delta) or delayed.
    """

    def __init__(self, sim: Optional["Simulator"] = None, name: str = ""):
        self.sim = sim
        self.name = name or f"event_{id(self):x}"
        self._waiters: List["Process"] = []
        self._callbacks = []
        #: Value passed to waiters by the most recent notification.
        self.last_value = None

    # -- registration ------------------------------------------------------
    def add_waiter(self, process: "Process") -> None:
        """Register *process* to be resumed on the next notification."""
        if self.sim is None:
            self.sim = process.sim
        self._waiters.append(process)

    def remove_waiter(self, process: "Process") -> None:
        """Remove *process* if it is registered (no-op otherwise)."""
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def add_callback(self, callback) -> None:
        """Register a plain callable invoked (with the notification value)
        every time the event fires.  Callbacks are persistent."""
        self._callbacks.append(callback)

    # -- notification ------------------------------------------------------
    def notify(self, delay: Union[SimTime, int] = 0, value=None) -> None:
        """Notify the event after *delay* (default: next delta cycle)."""
        delay = SimTime.coerce(delay)
        if self.sim is None:
            raise SchedulingError(
                f"event {self.name!r} cannot be notified: it is not attached "
                "to a simulator and has never been waited on"
            )
        self.sim.schedule_callback(lambda: self._fire(value), delay)

    def _fire(self, value) -> None:
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        push = self.sim._push
        for process in waiters:
            process.unsubscribe_all()
            push(0, process, value)
        for callback in list(self._callbacks):
            callback(value)

    @property
    def waiter_count(self) -> int:
        """Number of processes currently waiting on the event."""
        return len(self._waiters)

    def __repr__(self):
        return f"Event({self.name!r}, waiters={len(self._waiters)})"


class _Composite:
    """Base class of :class:`AnyOf` and :class:`AllOf`."""

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)
        if not self.events:
            raise SchedulingError("composite wait requires at least one event")

    def __repr__(self):
        return f"{type(self).__name__}({self.events!r})"


class AnyOf(_Composite):
    """Wait until *any* of the given events has been notified."""


class AllOf(_Composite):
    """Wait until *all* of the given events have been notified."""
