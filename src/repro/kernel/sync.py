"""Synchronisation primitives built on events."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.kernel.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.simulator import Simulator


class Mutex:
    """A FIFO-fair mutual-exclusion lock.

    ``acquire`` is a blocking call (generator, use ``yield from``); ``release``
    is immediate.  Used by channels to arbitrate exclusive resources such as
    the TAM or the ATE link.
    """

    def __init__(self, sim: "Simulator", name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters = deque()
        #: Total number of acquisitions (arbitration statistics).
        self.acquisitions = 0
        #: Number of acquisitions that had to wait.
        self.contentions = 0

    def acquire(self):
        """Blocking acquire; returns once the lock is held by the caller."""
        if self._locked or self._waiters:
            # Queue up; ownership is handed over directly by release().
            self.contentions += 1
            ticket = Event(self.sim, name=f"{self.name}.ticket")
            self._waiters.append(ticket)
            yield ticket
        else:
            self._locked = True
        self.acquisitions += 1
        return self

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns ``True`` on success."""
        if self._locked or self._waiters:
            return False
        self._locked = True
        self.acquisitions += 1
        return True

    def release(self) -> None:
        """Release the lock and wake the next waiter (FIFO order).

        When waiters are queued, ownership is handed over directly (the lock
        stays held) so a late-arriving process cannot sneak in between the
        release and the waiter's resumption.
        """
        if not self._locked:
            raise RuntimeError(f"mutex {self.name!r} released while not held")
        if self._waiters:
            ticket = self._waiters.popleft()
            ticket.notify(0)
        else:
            self._locked = False

    @property
    def locked(self) -> bool:
        return self._locked


class Semaphore:
    """A counting semaphore with blocking ``acquire``."""

    def __init__(self, sim: "Simulator", initial: int, name: str = "semaphore"):
        if initial < 0:
            raise ValueError("initial semaphore count cannot be negative")
        self.sim = sim
        self.name = name
        self._count = initial
        self._released = Event(sim, name=f"{name}.released")

    def acquire(self):
        """Blocking acquire of one unit."""
        while self._count == 0:
            yield self._released
        self._count -= 1

    def release(self) -> None:
        self._count += 1
        self._released.notify(0)

    @property
    def available(self) -> int:
        return self._count
