"""Test tasks and test schedules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.memory.march import MarchTest


class TestKind(enum.Enum):
    """The kinds of test sequences appearing in the paper's case study."""

    #: Logic BIST driven by a core-internal LFSR (tests 1 and 4).
    LOGIC_BIST = "logic_bist"
    #: Deterministic scan test with patterns stored in the ATE (tests 2, 5).
    EXTERNAL_SCAN = "external_scan"
    #: Deterministic scan test with compressed patterns and an on-chip
    #: decompressor (test 3).
    EXTERNAL_SCAN_COMPRESSED = "external_scan_compressed"
    #: Array BIST of an embedded memory driven by the test controller (test 6).
    MEMORY_BIST_CONTROLLER = "memory_bist_controller"
    #: The same array test executed by the embedded processor (test 7).
    MEMORY_MARCH_PROCESSOR = "memory_march_processor"
    #: Functional/in-the-loop test executed on the mission logic.
    FUNCTIONAL = "functional"


@dataclass
class TestTask:
    """One test sequence to be scheduled and executed.

    The task is the unit the scheduler reasons about (coarse view) and the
    unit the ATE executes on the TLM (accurate view).
    """

    name: str
    kind: TestKind
    core: str
    pattern_count: int = 0
    compression_ratio: float = 1.0
    march: Optional[MarchTest] = None
    pattern_backgrounds: int = 2
    #: Relative power drawn while this test is active (arbitrary units).
    power: float = 1.0
    attributes: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.pattern_count < 0:
            raise ValueError("pattern_count cannot be negative")
        if self.compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1")
        needs_patterns = self.kind in (
            TestKind.LOGIC_BIST,
            TestKind.EXTERNAL_SCAN,
            TestKind.EXTERNAL_SCAN_COMPRESSED,
        )
        if needs_patterns and self.pattern_count == 0:
            raise ValueError(f"test {self.name!r} ({self.kind.value}) needs patterns")
        needs_march = self.kind in (
            TestKind.MEMORY_BIST_CONTROLLER,
            TestKind.MEMORY_MARCH_PROCESSOR,
        )
        if needs_march and self.march is None:
            raise ValueError(f"test {self.name!r} ({self.kind.value}) needs a march test")

    @property
    def resources(self) -> FrozenSet[str]:
        """Resources the task occupies exclusively while it runs.

        Two tasks can only run concurrently if their resource sets are
        disjoint — the classic conflict model used by SoC test schedulers.
        """
        resources = {f"core:{self.core}"}
        if self.kind in (TestKind.EXTERNAL_SCAN, TestKind.EXTERNAL_SCAN_COMPRESSED):
            resources.add("ate_channel")
        if self.kind is TestKind.MEMORY_MARCH_PROCESSOR:
            # The embedded processor executes the march program, so it is
            # occupied in addition to the memory core under test.
            resources.add(f"core:{self.attributes.get('processor_core', 'processor')}")
        return frozenset(resources)

    def conflicts_with(self, other: "TestTask") -> bool:
        """True if the two tasks cannot run in the same schedule phase."""
        return bool(self.resources & other.resources)

    def __str__(self):
        return f"{self.name} [{self.kind.value} on {self.core}]"


@dataclass
class TestSchedule:
    """A test schedule: an ordered list of phases of concurrent tasks."""

    name: str
    phases: List[List[str]] = field(default_factory=list)
    description: str = ""

    @property
    def task_names(self) -> List[str]:
        return [task for phase in self.phases for task in phase]

    @property
    def phase_count(self) -> int:
        return len(self.phases)

    @property
    def is_sequential(self) -> bool:
        return all(len(phase) <= 1 for phase in self.phases)

    def validate(self, tasks: Dict[str, TestTask]) -> None:
        """Check that the schedule references known, non-conflicting tasks."""
        seen = set()
        for phase_index, phase in enumerate(self.phases):
            if not phase:
                raise ValueError(
                    f"schedule {self.name!r} has an empty phase at index {phase_index}"
                )
            for task_name in phase:
                if task_name not in tasks:
                    raise ValueError(
                        f"schedule {self.name!r} references unknown task {task_name!r}"
                    )
                if task_name in seen:
                    raise ValueError(
                        f"schedule {self.name!r} runs task {task_name!r} twice"
                    )
                seen.add(task_name)
            phase_tasks = [tasks[name] for name in phase]
            for index, first in enumerate(phase_tasks):
                for second in phase_tasks[index + 1:]:
                    if first.conflicts_with(second):
                        raise ValueError(
                            f"schedule {self.name!r} phase {phase_index} runs "
                            f"conflicting tasks {first.name!r} and {second.name!r} "
                            f"(shared resources: "
                            f"{sorted(first.resources & second.resources)})"
                        )

    @classmethod
    def sequential(cls, name: str, task_names: Sequence[str],
                   description: str = "") -> "TestSchedule":
        """A schedule running the given tasks one after another."""
        return cls(name=name, phases=[[task] for task in task_names],
                   description=description)

    def __str__(self):
        phases = " -> ".join(
            "{" + ", ".join(phase) + "}" for phase in self.phases
        )
        return f"{self.name}: {phases}"
