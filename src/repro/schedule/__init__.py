"""Test planning: tasks, schedules, coarse estimation and validation.

The paper's workflow is: a scheduler builds test schedules from *coarse*
information (estimated test lengths, resource conflicts, power budgets); the
resulting schedule is then *validated* by simulating it on the test
infrastructure TLM, which yields accurate test length, TAM utilization and
power figures.  This package provides the planning side of that workflow.

Schedule *construction* is a pluggable strategy subsystem
(:mod:`repro.schedule.strategies`): every algorithm in
:mod:`repro.schedule.scheduler` is registered under a name with a typed
parameter dataclass, and any strategy + parameter set round-trips through a
canonical ``NAME[:key=val,...]`` spec string — the form the exploration
campaigns sweep as a first-class axis.
"""

from repro.schedule.model import TestKind, TestSchedule, TestTask
from repro.schedule.estimator import PlatformParameters, TestTimeEstimator
from repro.schedule.power import PowerModel
from repro.schedule.scheduler import (
    binpack_power_schedule,
    greedy_concurrent_schedule,
    local_search_schedule,
    sequential_schedule,
    schedule_makespan_estimate,
)
from repro.schedule.strategies import (
    ScheduleStrategySpec,
    SchedulerStrategy,
    StrategyParams,
    build_strategy_schedule,
    canonical_schedule_name,
    canonical_schedule_names,
    get_strategy,
    is_strategy,
    register_strategy,
    strategy_fingerprint,
    strategy_names,
)
from repro.schedule.validation import ScheduleValidationReport, validate_schedule

__all__ = [
    "PlatformParameters",
    "PowerModel",
    "ScheduleStrategySpec",
    "SchedulerStrategy",
    "ScheduleValidationReport",
    "StrategyParams",
    "TestKind",
    "TestSchedule",
    "TestTask",
    "TestTimeEstimator",
    "binpack_power_schedule",
    "build_strategy_schedule",
    "canonical_schedule_name",
    "canonical_schedule_names",
    "get_strategy",
    "greedy_concurrent_schedule",
    "is_strategy",
    "local_search_schedule",
    "register_strategy",
    "schedule_makespan_estimate",
    "sequential_schedule",
    "strategy_fingerprint",
    "strategy_names",
    "validate_schedule",
]
