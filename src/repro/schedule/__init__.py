"""Test planning: tasks, schedules, coarse estimation and validation.

The paper's workflow is: a scheduler builds test schedules from *coarse*
information (estimated test lengths, resource conflicts, power budgets); the
resulting schedule is then *validated* by simulating it on the test
infrastructure TLM, which yields accurate test length, TAM utilization and
power figures.  This package provides the planning side of that workflow.
"""

from repro.schedule.model import TestKind, TestSchedule, TestTask
from repro.schedule.estimator import PlatformParameters, TestTimeEstimator
from repro.schedule.power import PowerModel
from repro.schedule.scheduler import (
    greedy_concurrent_schedule,
    sequential_schedule,
    schedule_makespan_estimate,
)
from repro.schedule.validation import ScheduleValidationReport, validate_schedule

__all__ = [
    "PlatformParameters",
    "PowerModel",
    "ScheduleValidationReport",
    "TestKind",
    "TestSchedule",
    "TestTask",
    "TestTimeEstimator",
    "greedy_concurrent_schedule",
    "schedule_makespan_estimate",
    "sequential_schedule",
    "validate_schedule",
]
