"""Schedule validation: coarse estimates versus simulated reality.

The paper argues that only simulation of the complete schedule on the test
infrastructure TLM gives accurate test length, TAM utilization and power
figures.  :func:`validate_schedule` packages that comparison: it takes the
scheduler's coarse makespan estimate and the simulated result and reports the
deviation, flagging schedules whose estimate is off by more than a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.schedule.estimator import TestTimeEstimator
from repro.schedule.model import TestSchedule, TestTask
from repro.schedule.power import PowerModel


@dataclass
class ScheduleValidationReport:
    """Outcome of validating one schedule against simulation results."""

    schedule_name: str
    estimated_cycles: int
    simulated_cycles: int
    power_violations: List[str] = field(default_factory=list)
    simulated_peak_tam_utilization: Optional[float] = None
    simulated_avg_tam_utilization: Optional[float] = None
    simulated_peak_power: Optional[float] = None
    tolerance: float = 0.15

    @property
    def deviation(self) -> float:
        """Relative deviation of the estimate from the simulated length."""
        if self.simulated_cycles == 0:
            return 0.0
        return (self.estimated_cycles - self.simulated_cycles) / self.simulated_cycles

    @property
    def estimate_is_accurate(self) -> bool:
        return abs(self.deviation) <= self.tolerance

    @property
    def passed(self) -> bool:
        return self.estimate_is_accurate and not self.power_violations

    def summary(self) -> str:
        lines = [
            f"schedule {self.schedule_name!r}:",
            f"  estimated length : {self.estimated_cycles:>12,} cycles",
            f"  simulated length : {self.simulated_cycles:>12,} cycles",
            f"  deviation        : {self.deviation:+.1%}"
            f" ({'ok' if self.estimate_is_accurate else 'exceeds tolerance'})",
        ]
        if self.simulated_peak_tam_utilization is not None:
            lines.append(
                f"  peak TAM util.   : {self.simulated_peak_tam_utilization:.0%}"
            )
        if self.simulated_avg_tam_utilization is not None:
            lines.append(
                f"  avg TAM util.    : {self.simulated_avg_tam_utilization:.0%}"
            )
        if self.simulated_peak_power is not None:
            lines.append(f"  peak test power  : {self.simulated_peak_power:.2f}")
        for violation in self.power_violations:
            lines.append(f"  POWER VIOLATION  : {violation}")
        return "\n".join(lines)


def validate_schedule(schedule: TestSchedule, tasks: Mapping[str, TestTask],
                      estimator: TestTimeEstimator,
                      simulated_cycles: int,
                      power_model: Optional[PowerModel] = None,
                      simulated_peak_tam_utilization: Optional[float] = None,
                      simulated_avg_tam_utilization: Optional[float] = None,
                      simulated_peak_power: Optional[float] = None,
                      tolerance: float = 0.15) -> ScheduleValidationReport:
    """Compare the coarse estimate of *schedule* with its simulated length."""
    estimated = estimator.estimate_schedule_cycles(schedule, tasks)
    power_model = power_model or PowerModel()
    violations = power_model.validate_schedule(schedule, tasks)
    if simulated_peak_power is not None and simulated_peak_power > power_model.budget:
        violations.append(
            f"simulated peak power {simulated_peak_power:.2f} exceeds budget "
            f"{power_model.budget:.2f}"
        )
    return ScheduleValidationReport(
        schedule_name=schedule.name,
        estimated_cycles=estimated,
        simulated_cycles=simulated_cycles,
        power_violations=violations,
        simulated_peak_tam_utilization=simulated_peak_tam_utilization,
        simulated_avg_tam_utilization=simulated_avg_tam_utilization,
        simulated_peak_power=simulated_peak_power,
        tolerance=tolerance,
    )


def validate_schedules(schedules: Mapping[str, TestSchedule],
                       tasks: Mapping[str, TestTask],
                       estimator: TestTimeEstimator,
                       simulated_cycles: Mapping[str, int],
                       **kwargs) -> Dict[str, ScheduleValidationReport]:
    """Validate several schedules at once (convenience wrapper)."""
    reports = {}
    for name, schedule in schedules.items():
        reports[name] = validate_schedule(
            schedule, tasks, estimator, simulated_cycles[name], **kwargs
        )
    return reports
