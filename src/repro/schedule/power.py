"""Test power modeling for scheduling decisions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.schedule.model import TestSchedule, TestTask


@dataclass
class PowerModel:
    """Coarse test power model used by the scheduler.

    Each task declares the power it draws while active (``TestTask.power``);
    a schedule phase draws the sum of its active tasks plus a static baseline.
    The model checks schedules against a peak power *budget* — exceeding the
    budget during manufacturing test is a classic cause of test escapes and
    over-conservative schedules, which is why the paper lists power as one of
    the quantities to evaluate by simulation.
    """

    budget: float = float("inf")
    static_power: float = 0.0
    #: Optional per-core idle power added while a core is not under test.
    idle_power: Dict[str, float] = field(default_factory=dict)

    def phase_power(self, phase: Sequence[str], tasks: Mapping[str, TestTask]) -> float:
        """Peak power of one schedule phase (all tasks active simultaneously)."""
        active = sum(tasks[name].power for name in phase)
        active_cores = {tasks[name].core for name in phase}
        idle = sum(power for core, power in self.idle_power.items()
                   if core not in active_cores)
        return self.static_power + active + idle

    def schedule_peak_power(self, schedule: TestSchedule,
                            tasks: Mapping[str, TestTask]) -> float:
        """Peak power over all phases of the schedule."""
        if not schedule.phases:
            return self.static_power + sum(self.idle_power.values())
        return max(self.phase_power(phase, tasks) for phase in schedule.phases)

    def phase_fits_budget(self, phase: Sequence[str],
                          tasks: Mapping[str, TestTask]) -> bool:
        return self.phase_power(phase, tasks) <= self.budget

    def validate_schedule(self, schedule: TestSchedule,
                          tasks: Mapping[str, TestTask]) -> List[str]:
        """Return a list of violations (empty when the schedule fits)."""
        violations = []
        for index, phase in enumerate(schedule.phases):
            power = self.phase_power(phase, tasks)
            if power > self.budget:
                violations.append(
                    f"phase {index} ({', '.join(phase)}) draws {power:.2f} "
                    f"which exceeds the budget of {self.budget:.2f}"
                )
        return violations
