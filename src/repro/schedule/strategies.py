"""The scheduler-strategy subsystem: a registry of named, parameterized
schedule generators.

The paper's loop is *build schedules from coarse estimates, then validate
them by simulation*.  This module turns the "build" side into a first-class,
pluggable axis: every schedule-construction algorithm of
:mod:`repro.schedule.scheduler` is registered as a :class:`SchedulerStrategy`
with a typed, frozen parameter dataclass, and any ``(strategy, params)``
pair can be written as — and parsed back from — a canonical *strategy spec
string*::

    sequential                     # all parameters at their defaults
    greedy:max_concurrency=2
    binpack:fit=worst
    anneal:steps=512,seed=9,cost=peak_power

Those strings are what travels through the stack: they are the entries of
``ScenarioSpec.schedules``, the ``schedule`` column of campaign artifacts,
and the argument of the CLI's ``--strategy`` flag.  The string form is
canonical (default-valued parameters are omitted, the remaining ones appear
in declaration order), so equal strategy specs always serialize to equal
strings — the property the campaign job memo and the artifact fingerprints
rely on.

Adding a strategy is three steps: write the builder function (in
:mod:`repro.schedule.scheduler` or anywhere), declare a frozen params
dataclass, and call :func:`register_strategy`.  See ``docs/scheduling.md``
for a worked example.

Registered strategies (the built-in five):

======================  =====================================================
``sequential``          one task at a time, longest first (``order=name``
                        for lexicographic order)
``greedy``              longest-task-first first-fit list scheduling under
                        the power budget
``binpack``             best-fit-decreasing packing into power windows
                        (``fit=worst`` spreads load to flatten power)
``anneal``              seeded deterministic simulated annealing improving an
                        initial schedule against a configurable cost
``portfolio``           best-of-N member pick per scenario under the coarse
                        estimator (``portfolio:members=greedy|binpack``)
======================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.schedule.model import TestSchedule, TestTask
from repro.schedule.power import PowerModel
from repro.schedule.scheduler import (
    binpack_power_schedule,
    greedy_concurrent_schedule,
    local_search_schedule,
    sequential_schedule,
)

#: Characters that cannot appear in string-valued strategy parameters (they
#: are the delimiters of the canonical spec string).
_RESERVED = ":,="


# -- parameter dataclasses ---------------------------------------------------
@dataclass(frozen=True)
class StrategyParams:
    """Base class of strategy parameter sets.

    Subclasses are frozen dataclasses whose fields all carry defaults and
    hold only scalars (``int``/``float``/``bool``/``str``), so every
    parameter set is hashable, picklable and losslessly representable in the
    canonical ``key=value,...`` string form.
    """


@dataclass(frozen=True)
class SequentialParams(StrategyParams):
    #: ``longest`` runs the longest estimated test first; ``name`` runs the
    #: tasks in lexicographic order.
    order: str = "longest"

    def __post_init__(self):
        if self.order not in ("longest", "name"):
            raise ValueError(f"order must be 'longest' or 'name', "
                             f"got {self.order!r}")


@dataclass(frozen=True)
class GreedyParams(StrategyParams):
    #: Maximum tasks per concurrent phase (0: unlimited).
    max_concurrency: int = 0

    def __post_init__(self):
        if self.max_concurrency < 0:
            raise ValueError("max_concurrency cannot be negative")


@dataclass(frozen=True)
class BinpackParams(StrategyParams):
    #: ``best`` minimizes the estimated-makespan increase per placement;
    #: ``worst`` maximizes remaining power headroom (flatter power profile).
    fit: str = "best"
    max_concurrency: int = 0

    def __post_init__(self):
        if self.fit not in ("best", "worst"):
            raise ValueError(f"fit must be 'best' or 'worst', got {self.fit!r}")
        if self.max_concurrency < 0:
            raise ValueError("max_concurrency cannot be negative")


@dataclass(frozen=True)
class AnnealParams(StrategyParams):
    steps: int = 256
    seed: int = 1
    #: ``makespan``, ``peak_power`` or ``combined``.
    cost: str = "combined"
    #: Weight of the peak-power term in the combined cost (0..1).
    peak_weight: float = 0.5
    #: Strategy building the starting schedule: ``greedy`` or ``binpack``.
    init: str = "greedy"
    max_concurrency: int = 0

    def __post_init__(self):
        if self.steps < 0:
            raise ValueError("steps cannot be negative")
        if self.cost not in ("makespan", "peak_power", "combined"):
            raise ValueError(f"cost must be 'makespan', 'peak_power' or "
                             f"'combined', got {self.cost!r}")
        if not 0.0 <= self.peak_weight <= 1.0:
            raise ValueError("peak_weight must be in [0, 1]")
        if self.init not in ("greedy", "binpack"):
            raise ValueError(f"init must be 'greedy' or 'binpack', "
                             f"got {self.init!r}")
        if self.max_concurrency < 0:
            raise ValueError("max_concurrency cannot be negative")


@dataclass(frozen=True)
class PortfolioParams(StrategyParams):
    #: ``|``-separated member strategy names (``|`` is not a spec-string
    #: delimiter, so the list survives the canonical ``key=value`` form).
    #: Members are plain registered strategy names with default parameters.
    members: str = "greedy|binpack|anneal"

    def __post_init__(self):
        names = self.members.split("|") if self.members else []
        if not names or any(not name for name in names):
            raise ValueError(
                f"members must be a non-empty |-separated list of strategy "
                f"names, got {self.members!r}")
        seen = set()
        for name in names:
            if name == "portfolio":
                raise ValueError("a portfolio cannot contain itself")
            if any(c in name for c in _RESERVED) or name not in _REGISTRY:
                raise ValueError(
                    f"portfolio member {name!r} is not a registered "
                    f"strategy; registered: {strategy_names()}")
            if name in seen:
                raise ValueError(f"duplicate portfolio member {name!r}")
            seen.add(name)

    @property
    def member_names(self) -> Tuple[str, ...]:
        return tuple(self.members.split("|"))


# -- the registry ------------------------------------------------------------
#: Builder signature: (schedule_name, tasks, estimates, power_model, params).
StrategyBuilder = Callable[
    [str, Mapping[str, TestTask], Mapping[str, int], PowerModel,
     StrategyParams],
    TestSchedule,
]


@dataclass(frozen=True)
class SchedulerStrategy:
    """One registered schedule-generation strategy."""

    name: str
    params_type: Type[StrategyParams]
    builder: StrategyBuilder
    #: One-line description for listings (``python -m repro.explore strategies``).
    summary: str = ""

    def build(self, tasks: Mapping[str, TestTask],
              estimates: Mapping[str, int],
              power_model: Optional[PowerModel] = None,
              params: Optional[StrategyParams] = None,
              name: Optional[str] = None) -> TestSchedule:
        """Build a schedule; the default name is the canonical spec string."""
        if params is None:
            params = self.params_type()
        if not isinstance(params, self.params_type):
            raise TypeError(
                f"strategy {self.name!r} takes {self.params_type.__name__}, "
                f"got {type(params).__name__}")
        spec = ScheduleStrategySpec(strategy=self.name, params=params)
        return self.builder(name if name is not None else spec.canonical,
                            tasks, estimates,
                            power_model or PowerModel(), params)

    def parameter_docs(self) -> List[Tuple[str, str, str]]:
        """``(name, type, default)`` of every parameter, declaration order."""
        return [(f.name, f.type if isinstance(f.type, str)
                 else f.type.__name__, _render_value(f.default))
                for f in fields(self.params_type)]


_REGISTRY: Dict[str, SchedulerStrategy] = {}


def register_strategy(strategy: SchedulerStrategy) -> SchedulerStrategy:
    """Add *strategy* to the registry (its name must be unique and free of
    the spec-string delimiters)."""
    if any(c in strategy.name for c in _RESERVED) or not strategy.name:
        raise ValueError(f"invalid strategy name {strategy.name!r}")
    if strategy.name in _REGISTRY:
        raise ValueError(f"strategy {strategy.name!r} is already registered")
    _REGISTRY[strategy.name] = strategy
    return strategy


def strategy_names() -> List[str]:
    """The registered strategy names, in registration order."""
    return list(_REGISTRY)


def get_strategy(name: str) -> SchedulerStrategy:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler strategy {name!r}; "
            f"registered: {strategy_names()}")


def is_strategy(name: str) -> bool:
    """True when *name* (or the base name of a spec string) is registered."""
    base, _, _ = name.partition(":")
    return base in _REGISTRY


# -- canonical spec strings --------------------------------------------------
def _render_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str) and any(c in value for c in _RESERVED):
        # A delimiter inside a string value would render a canonical spec
        # string that cannot be re-parsed; fail at the rendering site
        # instead of far away at the next canonicalization.
        raise ValueError(
            f"string parameter value {value!r} contains a reserved "
            f"delimiter ({_RESERVED!r})")
    return str(value)


def _parse_value(text: str, target: type, key: str, strategy: str) -> object:
    try:
        if target is bool:
            if text not in ("true", "false"):
                raise ValueError(f"expected true/false, got {text!r}")
            return text == "true"
        if target is int:
            return int(text)
        if target is float:
            return float(text)
        return text
    except ValueError as error:
        raise ValueError(
            f"strategy {strategy!r}: parameter {key!r} expects "
            f"{target.__name__}, got {text!r}") from error


#: Field types resolvable from the annotation strings used in this module.
_FIELD_TYPES = {"int": int, "float": float, "bool": bool, "str": str}


@dataclass(frozen=True)
class ScheduleStrategySpec:
    """A strategy plus a concrete parameter set (one schedule recipe)."""

    strategy: str
    params: StrategyParams

    @property
    def canonical(self) -> str:
        """The canonical spec string: default parameters omitted, the rest
        in declaration order — equal specs render to equal strings."""
        parts = [f"{f.name}={_render_value(getattr(self.params, f.name))}"
                 for f in fields(self.params)
                 if getattr(self.params, f.name) != f.default]
        if not parts:
            return self.strategy
        return f"{self.strategy}:{','.join(parts)}"

    @property
    def fingerprint(self) -> str:
        """The parameter fingerprint: the ``key=value,...`` part of the
        canonical string ("" when every parameter is at its default)."""
        _, _, params = self.canonical.partition(":")
        return params

    @classmethod
    def parse(cls, text: str) -> Optional["ScheduleStrategySpec"]:
        """Parse ``NAME[:key=val,...]``.

        Returns ``None`` when the base name is not a registered strategy
        (the text then refers to a pre-built schedule, e.g. the paper's
        hand-written ``schedule_1``); raises :class:`ValueError` when the
        base name *is* registered but the parameter list is malformed.
        """
        base, separator, params_text = text.partition(":")
        if base not in _REGISTRY:
            if separator:
                raise ValueError(
                    f"unknown scheduler strategy {base!r} in {text!r}; "
                    f"registered: {strategy_names()}")
            return None
        strategy = _REGISTRY[base]
        valid = {f.name: f for f in fields(strategy.params_type)}
        values: Dict[str, object] = {}
        if params_text:
            for part in params_text.split(","):
                key, eq, value_text = part.partition("=")
                if not eq or not key:
                    raise ValueError(
                        f"strategy {base!r}: malformed parameter {part!r} "
                        f"(expected key=value)")
                if key in values:
                    raise ValueError(
                        f"strategy {base!r}: duplicate parameter {key!r}")
                if key not in valid:
                    raise ValueError(
                        f"strategy {base!r} has no parameter {key!r}; "
                        f"parameters: {sorted(valid)}")
                annotation = valid[key].type
                target = (_FIELD_TYPES[annotation]
                          if isinstance(annotation, str) else annotation)
                values[key] = _parse_value(value_text, target, key, base)
        elif separator:
            raise ValueError(f"strategy spec {text!r} has an empty "
                             f"parameter list after ':'")
        return cls(strategy=base, params=strategy.params_type(**values))

    def build(self, tasks: Mapping[str, TestTask],
              estimates: Mapping[str, int],
              power_model: Optional[PowerModel] = None) -> TestSchedule:
        """Build the schedule (named by the canonical spec string)."""
        return get_strategy(self.strategy).build(
            tasks, estimates, power_model=power_model, params=self.params)


def canonical_schedule_name(text: str) -> str:
    """Canonicalize a schedule name.

    Strategy spec strings are normalized (defaults dropped, declaration
    order); anything else — the name of a pre-built schedule — passes
    through unchanged.  Raises :class:`ValueError` for a malformed spec
    string of a registered strategy.
    """
    spec = ScheduleStrategySpec.parse(text)
    return text if spec is None else spec.canonical


def canonical_schedule_names(names) -> Tuple[str, ...]:
    """Canonicalize a schedule-name list, dropping duplicate recipes
    (order-preserving).

    The shared rule behind ``ScenarioSpec.schedules`` and the
    campaign/adaptive schedule overrides: entries that canonicalize to the
    same recipe (``"greedy"`` next to ``"greedy:max_concurrency=0"``)
    collapse to one — a duplicate would simulate the identical schedule
    twice.
    """
    canonical: List[str] = []
    for entry in names:
        name = canonical_schedule_name(entry)
        if name not in canonical:
            canonical.append(name)
    return tuple(canonical)


def strategy_fingerprint(schedule_name: str) -> Tuple[str, str]:
    """``(strategy, parameter fingerprint)`` of a schedule name.

    The pair recorded in campaign artifacts: ``("greedy", "")`` for a
    default-parameter strategy schedule, ``("anneal", "steps=512")`` for a
    parameterized one, and ``("", "")`` for schedules that did not come out
    of the registry (hand-written or malformed names alike — artifact
    writing never raises).
    """
    base, _, _ = schedule_name.partition(":")
    if base not in _REGISTRY:
        return "", ""
    try:
        spec = ScheduleStrategySpec.parse(schedule_name)
    except ValueError:
        return "", ""
    return spec.strategy, spec.fingerprint


def build_strategy_schedule(text: str, tasks: Mapping[str, TestTask],
                            estimates: Mapping[str, int],
                            power_model: Optional[PowerModel] = None,
                            ) -> TestSchedule:
    """Parse *text* and build the schedule; raises for unregistered names."""
    spec = ScheduleStrategySpec.parse(text)
    if spec is None:
        raise KeyError(
            f"unknown scheduler strategy {text!r}; "
            f"registered: {strategy_names()}")
    return spec.build(tasks, estimates, power_model=power_model)


# -- the built-in strategies -------------------------------------------------
def _build_sequential(name, tasks, estimates, power_model, params):
    if params.order == "longest":
        order = sorted(tasks, key=lambda task: estimates[task], reverse=True)
        detail = "longest test first"
    else:
        order = sorted(tasks)
        detail = "lexicographic order"
    return sequential_schedule(name, tasks, order=order,
                               description=f"sequential baseline ({detail})")


def _build_greedy(name, tasks, estimates, power_model, params):
    return greedy_concurrent_schedule(
        name, tasks, estimates, power_model=power_model,
        max_concurrency=params.max_concurrency or None,
        description=f"greedy concurrent schedule "
                    f"(power budget {power_model.budget:g})")


def _build_binpack(name, tasks, estimates, power_model, params):
    return binpack_power_schedule(
        name, tasks, estimates, power_model=power_model,
        max_concurrency=params.max_concurrency or None, fit=params.fit,
        description=f"{params.fit}-fit-decreasing power-window packing "
                    f"(power budget {power_model.budget:g})")


def _build_anneal(name, tasks, estimates, power_model, params):
    initial_builder = (_build_greedy if params.init == "greedy"
                       else _build_binpack)
    initial = initial_builder(
        name, tasks, estimates, power_model,
        GreedyParams(max_concurrency=params.max_concurrency)
        if params.init == "greedy"
        else BinpackParams(max_concurrency=params.max_concurrency))
    return local_search_schedule(
        name, tasks, estimates, power_model=power_model,
        seed=params.seed, steps=params.steps, cost=params.cost,
        peak_weight=params.peak_weight, initial=initial,
        max_concurrency=params.max_concurrency or None,
        description=f"annealed {params.init} schedule "
                    f"({params.steps} steps, cost {params.cost})")


def estimated_makespan(schedule: TestSchedule,
                       estimates: Mapping[str, int]) -> int:
    """Estimator makespan of *schedule*: phases back to back, tasks in a
    phase fully concurrent (the coarse scheduler assumption, shared with
    :meth:`repro.schedule.estimator.TestTimeEstimator.estimate_schedule_cycles`)."""
    return sum(max(estimates[name] for name in phase)
               for phase in schedule.phases)


def _build_portfolio(name, tasks, estimates, power_model, params):
    best = None
    for member in params.member_names:
        candidate = _REGISTRY[member].build(
            tasks, estimates, power_model=power_model, name=name)
        key = (estimated_makespan(candidate, estimates),
               power_model.schedule_peak_power(candidate, tasks),
               member)
        if best is None or key < best[0]:
            best = (key, candidate, member)
    _, schedule, member = best
    schedule.description = (
        f"portfolio best-of-{len(params.member_names)} under the estimator: "
        f"picked {member} ({best[0][0]} cycles, peak {best[0][1]:g})")
    return schedule


register_strategy(SchedulerStrategy(
    name="sequential", params_type=SequentialParams,
    builder=_build_sequential,
    summary="one task at a time (the paper's sequential baselines)"))
register_strategy(SchedulerStrategy(
    name="greedy", params_type=GreedyParams, builder=_build_greedy,
    summary="longest-first first-fit list scheduling under the power budget"))
register_strategy(SchedulerStrategy(
    name="binpack", params_type=BinpackParams, builder=_build_binpack,
    summary="best-fit-decreasing packing into power windows"))
register_strategy(SchedulerStrategy(
    name="anneal", params_type=AnnealParams, builder=_build_anneal,
    summary="seeded simulated annealing over a configurable cost"))
register_strategy(SchedulerStrategy(
    name="portfolio", params_type=PortfolioParams, builder=_build_portfolio,
    summary="best-of-N member pick per scenario under the coarse estimator"))
