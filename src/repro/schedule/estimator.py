"""Coarse test-time estimation.

The scheduler only has coarse information (the paper stresses this), so the
estimator computes per-task cycle counts from pattern counts, scan-chain
configurations and platform bandwidths without simulating anything.  The
simulation-based validation in :mod:`repro.schedule.validation` then measures
how far these estimates are from the accurately simulated figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.dft.ctl import CoreTestDescription
from repro.schedule.model import TestKind, TestSchedule, TestTask


@dataclass(frozen=True)
class PlatformParameters:
    """Bandwidths and per-operation costs of the test platform."""

    #: Width of the on-chip TAM / system bus in bits.
    tam_width_bits: int = 32
    #: Width of the ATE link (EBI interface) in bits per ATE cycle.
    ate_width_bits: int = 16
    #: Clock frequency of the TAM/system clock in MHz (for time conversion).
    clock_mhz: float = 100.0
    #: Cycles per memory operation when the test controller drives array BIST.
    controller_cycles_per_memory_op: float = 1.15
    #: Cycles per memory operation when the embedded processor drives the march.
    processor_cycles_per_memory_op: float = 6.0
    #: Arbitration overhead cycles per TAM burst.
    tam_overhead_cycles: int = 1
    #: Cycles to shift one configuration through the configuration scan ring.
    configuration_cycles: int = 64
    #: Additional per-task setup transactions (start command, result readout).
    setup_transactions: int = 4
    #: Width of the wrapper parallel port in bits (0: one lane per chain).
    wrapper_parallel_width_bits: int = 0
    #: ATE stimulus vector memory in link words (0: unlimited buffer).
    ate_vector_memory_words: int = 0
    #: Stall cycles for one workstation reload of the ATE vector memory.
    ate_reload_cycles: int = 25_000

    def __post_init__(self):
        if self.clock_mhz <= 0:
            raise ValueError(
                f"clock_mhz must be positive, got {self.clock_mhz!r}")

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e6)


class TestTimeEstimator:
    """Estimates per-task and per-schedule test lengths in clock cycles."""

    def __init__(self, descriptions: Mapping[str, CoreTestDescription],
                 platform: PlatformParameters,
                 memory_words: Mapping[str, int] = None):
        self.descriptions = dict(descriptions)
        self.platform = platform
        self.memory_words = dict(memory_words or {})

    # -- per-task estimates --------------------------------------------------------
    def _description(self, task: TestTask) -> CoreTestDescription:
        try:
            return self.descriptions[task.core]
        except KeyError:
            raise KeyError(f"no core test description for core {task.core!r}")

    def _memory_size(self, task: TestTask) -> int:
        try:
            return self.memory_words[task.core]
        except KeyError:
            raise KeyError(f"no memory size registered for core {task.core!r}")

    def _external_shift_cycles(self, description: CoreTestDescription) -> int:
        """Per-pattern shift cycles under the wrapper parallel-port width
        (the description owns the lane model, so estimator and wrapper TLM
        cannot drift apart)."""
        return description.external_shift_cycles_per_pattern(
            lanes=self.platform.wrapper_parallel_width_bits)

    def _reload_cycles(self, pattern_count: int, ate_words_per_pattern: int) -> int:
        """Total ATE vector-memory reload stalls of an external test."""
        platform = self.platform
        if not platform.ate_vector_memory_words:
            return 0
        capacity_patterns = max(
            1, platform.ate_vector_memory_words // max(1, ate_words_per_pattern))
        reloads = math.ceil(pattern_count / capacity_patterns) - 1
        return max(0, reloads) * platform.ate_reload_cycles

    def estimate_task_cycles(self, task: TestTask) -> int:
        """Estimated test length of *task* in TAM clock cycles."""
        platform = self.platform
        overhead = (platform.configuration_cycles
                    + platform.setup_transactions * platform.tam_overhead_cycles)

        if task.kind is TestKind.LOGIC_BIST:
            description = self._description(task)
            cycles = task.pattern_count * description.shift_cycles_per_pattern()
            return cycles + overhead

        if task.kind is TestKind.EXTERNAL_SCAN:
            description = self._description(task)
            bits = description.stimulus_bits_per_pattern()
            ate_cycles = math.ceil(bits / platform.ate_width_bits)
            tam_cycles = (math.ceil(bits / platform.tam_width_bits)
                          + platform.tam_overhead_cycles)
            shift_cycles = self._external_shift_cycles(description)
            per_pattern = max(ate_cycles, tam_cycles, shift_cycles)
            reload_cycles = self._reload_cycles(task.pattern_count, ate_cycles)
            return task.pattern_count * per_pattern + reload_cycles + overhead

        if task.kind is TestKind.EXTERNAL_SCAN_COMPRESSED:
            description = self._description(task)
            bits = description.stimulus_bits_per_pattern()
            compressed_bits = max(1, math.ceil(bits / task.compression_ratio))
            ate_cycles = math.ceil(compressed_bits / platform.ate_width_bits)
            # Compressed and expanded data both travel over the TAM (the
            # decompressor is a block on the bus, see the SoC architecture).
            tam_cycles = (math.ceil((bits + compressed_bits) / platform.tam_width_bits)
                          + 2 * platform.tam_overhead_cycles)
            # Without internal chains there is no decompressor: the patterns
            # shift through the wrapper parallel port like plain external
            # scan (mirrors TestWrapper.external_shift_cycles_per_pattern).
            if description.internal_chain_count:
                shift_cycles = description.shift_cycles_per_pattern(compressed=True)
            else:
                shift_cycles = self._external_shift_cycles(description)
            per_pattern = max(ate_cycles, tam_cycles, shift_cycles)
            reload_cycles = self._reload_cycles(task.pattern_count, ate_cycles)
            return task.pattern_count * per_pattern + reload_cycles + overhead

        if task.kind is TestKind.MEMORY_BIST_CONTROLLER:
            words = self._memory_size(task)
            operations = (task.march.operation_count(words)
                          + 2 * task.pattern_backgrounds * words)
            cycles = round(operations * platform.controller_cycles_per_memory_op)
            return cycles + overhead

        if task.kind is TestKind.MEMORY_MARCH_PROCESSOR:
            words = self._memory_size(task)
            operations = (task.march.operation_count(words)
                          + 2 * task.pattern_backgrounds * words)
            cycles = round(operations * platform.processor_cycles_per_memory_op)
            return cycles + overhead

        if task.kind is TestKind.FUNCTIONAL:
            return int(task.attributes.get("functional_cycles", 0)) + overhead

        raise ValueError(f"unsupported test kind: {task.kind!r}")

    def estimate_all(self, tasks: Mapping[str, TestTask]) -> Dict[str, int]:
        return {name: self.estimate_task_cycles(task) for name, task in tasks.items()}

    # -- per-schedule estimates --------------------------------------------------------
    def estimate_schedule_cycles(self, schedule: TestSchedule,
                                 tasks: Mapping[str, TestTask]) -> int:
        """Estimated makespan of *schedule*: phases run back to back, tasks in
        a phase run fully concurrently (the coarse scheduler assumption)."""
        schedule.validate(dict(tasks))
        total = 0
        for phase in schedule.phases:
            total += max(self.estimate_task_cycles(tasks[name]) for name in phase)
        return total

    def estimate_schedule_seconds(self, schedule: TestSchedule,
                                  tasks: Mapping[str, TestTask]) -> float:
        return self.platform.cycles_to_seconds(
            self.estimate_schedule_cycles(schedule, tasks)
        )


# -- vectorized batch estimation -----------------------------------------------------

_BATCH_KIND_CODES = {
    TestKind.LOGIC_BIST: 0,
    TestKind.EXTERNAL_SCAN: 1,
    TestKind.EXTERNAL_SCAN_COMPRESSED: 2,
    TestKind.MEMORY_BIST_CONTROLLER: 3,
    TestKind.MEMORY_MARCH_PROCESSOR: 4,
    TestKind.FUNCTIONAL: 5,
}

_SCAN_KINDS = (TestKind.LOGIC_BIST, TestKind.EXTERNAL_SCAN,
               TestKind.EXTERNAL_SCAN_COMPRESSED)
_MEMORY_KINDS = (TestKind.MEMORY_BIST_CONTROLLER,
                 TestKind.MEMORY_MARCH_PROCESSOR)


def _ceil_div(numerator: np.ndarray, denominator) -> np.ndarray:
    """``math.ceil(a / b)`` row-wise, with the same float-division semantics
    as the scalar estimator (``/`` then ``ceil``, not ``-(-a // b)``)."""
    return np.ceil(numerator / denominator).astype(np.int64)


class BatchEstimator:
    """Columnar, vectorized counterpart of :class:`TestTimeEstimator`.

    Rows accumulate task structure (pattern counts, scan geometry, memory
    operation counts) together with the per-row platform parameters, so
    tasks from *different* scenarios — each with its own platform — can be
    appended into one batch and evaluated in a single numpy pass.

    :meth:`task_cycles` is bit-exact with
    :meth:`TestTimeEstimator.estimate_task_cycles`: every ``ceil`` is a
    float division followed by ``ceil`` (never an integer-division trick),
    every ``round`` is round-half-even (``np.rint``), and the result dtype
    is ``int64`` throughout.
    """

    _COLUMNS = (
        "kind", "patterns", "scan_cells", "max_chain_length", "chain_count",
        "internal_chains", "compression_ratio", "operations", "cycles_per_op",
        "functional_cycles", "tam_width", "ate_width", "tam_overhead",
        "configuration_cycles", "setup_transactions", "lanes",
        "ate_memory_words", "ate_reload_cycles",
    )
    _FLOAT_COLUMNS = frozenset({"compression_ratio", "cycles_per_op"})

    def __init__(self):
        self._columns = {name: [] for name in self._COLUMNS}
        self._cycles: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._columns["kind"])

    # -- row construction ------------------------------------------------------------
    def add_task(self, task: TestTask, platform: PlatformParameters,
                 description: Optional[CoreTestDescription] = None,
                 memory_words: Optional[int] = None) -> int:
        """Append one task row and return its row index."""
        try:
            kind = _BATCH_KIND_CODES[task.kind]
        except KeyError:
            raise ValueError(f"unsupported test kind: {task.kind!r}")
        row = dict.fromkeys(self._COLUMNS, 0)
        row["compression_ratio"] = 1.0
        row["cycles_per_op"] = 0.0
        row["kind"] = kind
        row["patterns"] = task.pattern_count
        if task.kind in _SCAN_KINDS:
            if description is None:
                raise KeyError(
                    f"no core test description for core {task.core!r}")
            row["scan_cells"] = description.stimulus_bits_per_pattern()
            row["max_chain_length"] = description.scan_config.max_chain_length
            row["chain_count"] = description.chain_count
            row["internal_chains"] = description.internal_chain_count or 0
            if task.kind is TestKind.EXTERNAL_SCAN_COMPRESSED:
                row["compression_ratio"] = float(task.compression_ratio)
        elif task.kind in _MEMORY_KINDS:
            if memory_words is None:
                raise KeyError(
                    f"no memory size registered for core {task.core!r}")
            row["operations"] = (task.march.operation_count(memory_words)
                                 + 2 * task.pattern_backgrounds * memory_words)
            row["cycles_per_op"] = (
                platform.controller_cycles_per_memory_op
                if task.kind is TestKind.MEMORY_BIST_CONTROLLER
                else platform.processor_cycles_per_memory_op)
        elif task.kind is TestKind.FUNCTIONAL:
            row["functional_cycles"] = int(
                task.attributes.get("functional_cycles", 0))
        row["tam_width"] = platform.tam_width_bits
        row["ate_width"] = platform.ate_width_bits
        row["tam_overhead"] = platform.tam_overhead_cycles
        row["configuration_cycles"] = platform.configuration_cycles
        row["setup_transactions"] = platform.setup_transactions
        row["lanes"] = platform.wrapper_parallel_width_bits
        row["ate_memory_words"] = platform.ate_vector_memory_words
        row["ate_reload_cycles"] = platform.ate_reload_cycles
        for name in self._COLUMNS:
            self._columns[name].append(row[name])
        self._cycles = None
        return len(self) - 1

    def add_estimator_tasks(self, estimator: TestTimeEstimator,
                            tasks: Mapping[str, TestTask]) -> Dict[str, int]:
        """Append every task of *estimator*'s scenario; returns name → row."""
        rows = {}
        for name, task in tasks.items():
            description = None
            memory_words = None
            if task.kind in _SCAN_KINDS:
                description = estimator._description(task)
            elif task.kind in _MEMORY_KINDS:
                memory_words = estimator._memory_size(task)
            rows[name] = self.add_task(task, estimator.platform,
                                       description=description,
                                       memory_words=memory_words)
        return rows

    # -- vectorized evaluation ---------------------------------------------------------
    def _array(self, name: str) -> np.ndarray:
        dtype = np.float64 if name in self._FLOAT_COLUMNS else np.int64
        return np.asarray(self._columns[name], dtype=dtype)

    def task_cycles(self) -> np.ndarray:
        """Per-row estimated test lengths (int64), mirroring the scalar
        estimator formula-for-formula."""
        if self._cycles is not None:
            return self._cycles
        if not len(self):
            self._cycles = np.zeros(0, dtype=np.int64)
            return self._cycles
        kind = self._array("kind")
        patterns = self._array("patterns")
        overhead = (self._array("configuration_cycles")
                    + self._array("setup_transactions") * self._array("tam_overhead"))
        cycles = np.zeros(len(self), dtype=np.int64)

        max_chain = self._array("max_chain_length")
        shift_plain = max_chain + 1

        is_bist = kind == 0
        if is_bist.any():
            cycles[is_bist] = (patterns * shift_plain + overhead)[is_bist]

        is_external = kind == 1
        is_compressed = kind == 2
        if is_external.any() or is_compressed.any():
            bits = self._array("scan_cells")
            tam_width = self._array("tam_width")
            ate_width = self._array("ate_width")
            tam_overhead = self._array("tam_overhead")
            chain_count = self._array("chain_count")
            lanes = self._array("lanes")
            internal = self._array("internal_chains")
            # external_shift_cycles_per_pattern: whole chains concatenate
            # onto lanes; widths beyond the chain count change nothing.
            ext_shift = np.where(
                (lanes <= 0) | (lanes >= chain_count),
                shift_plain,
                _ceil_div(chain_count, np.maximum(lanes, 1)) * max_chain + 1)
            compressed_bits = np.maximum(
                1, _ceil_div(bits, self._array("compression_ratio")))
            ate_cycles = np.where(
                is_compressed,
                _ceil_div(compressed_bits, ate_width),
                _ceil_div(bits, ate_width))
            tam_cycles = np.where(
                is_compressed,
                _ceil_div(bits + compressed_bits, tam_width) + 2 * tam_overhead,
                _ceil_div(bits, tam_width) + tam_overhead)
            shift_cycles = np.where(
                is_compressed & (internal > 0),
                _ceil_div(bits, np.maximum(internal, 1)) + 1,
                ext_shift)
            per_pattern = np.maximum(np.maximum(ate_cycles, tam_cycles),
                                     shift_cycles)
            ate_memory = self._array("ate_memory_words")
            capacity = np.maximum(1, ate_memory // np.maximum(1, ate_cycles))
            reloads = np.maximum(0, _ceil_div(patterns, capacity) - 1)
            reload_cycles = np.where(
                ate_memory > 0, reloads * self._array("ate_reload_cycles"), 0)
            scan_mask = is_external | is_compressed
            cycles[scan_mask] = (patterns * per_pattern + reload_cycles
                                 + overhead)[scan_mask]

        is_memory = (kind == 3) | (kind == 4)
        if is_memory.any():
            memory_cycles = np.rint(
                self._array("operations") * self._array("cycles_per_op")
            ).astype(np.int64)
            cycles[is_memory] = (memory_cycles + overhead)[is_memory]

        is_functional = kind == 5
        if is_functional.any():
            cycles[is_functional] = (self._array("functional_cycles")
                                     + overhead)[is_functional]

        self._cycles = cycles
        return cycles

    def schedule_cycles(self, schedule: TestSchedule,
                        rows: Mapping[str, int]) -> int:
        """Estimated makespan of *schedule* over previously added rows
        (phases back to back, tasks in a phase fully concurrent).  The
        schedule must already be validated against its task set."""
        cycles = self.task_cycles()
        total = 0
        for phase in schedule.phases:
            total += int(max(cycles[rows[name]] for name in phase))
        return total


def estimate_batch(estimator: TestTimeEstimator,
                   tasks: Mapping[str, TestTask]) -> Dict[str, int]:
    """Vectorized drop-in for :meth:`TestTimeEstimator.estimate_all`."""
    batch = BatchEstimator()
    rows = batch.add_estimator_tasks(estimator, tasks)
    cycles = batch.task_cycles()
    return {name: int(cycles[index]) for name, index in rows.items()}
