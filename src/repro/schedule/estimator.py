"""Coarse test-time estimation.

The scheduler only has coarse information (the paper stresses this), so the
estimator computes per-task cycle counts from pattern counts, scan-chain
configurations and platform bandwidths without simulating anything.  The
simulation-based validation in :mod:`repro.schedule.validation` then measures
how far these estimates are from the accurately simulated figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.dft.ctl import CoreTestDescription
from repro.schedule.model import TestKind, TestSchedule, TestTask


@dataclass(frozen=True)
class PlatformParameters:
    """Bandwidths and per-operation costs of the test platform."""

    #: Width of the on-chip TAM / system bus in bits.
    tam_width_bits: int = 32
    #: Width of the ATE link (EBI interface) in bits per ATE cycle.
    ate_width_bits: int = 16
    #: Clock frequency of the TAM/system clock in MHz (for time conversion).
    clock_mhz: float = 100.0
    #: Cycles per memory operation when the test controller drives array BIST.
    controller_cycles_per_memory_op: float = 1.15
    #: Cycles per memory operation when the embedded processor drives the march.
    processor_cycles_per_memory_op: float = 6.0
    #: Arbitration overhead cycles per TAM burst.
    tam_overhead_cycles: int = 1
    #: Cycles to shift one configuration through the configuration scan ring.
    configuration_cycles: int = 64
    #: Additional per-task setup transactions (start command, result readout).
    setup_transactions: int = 4
    #: Width of the wrapper parallel port in bits (0: one lane per chain).
    wrapper_parallel_width_bits: int = 0
    #: ATE stimulus vector memory in link words (0: unlimited buffer).
    ate_vector_memory_words: int = 0
    #: Stall cycles for one workstation reload of the ATE vector memory.
    ate_reload_cycles: int = 25_000

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e6)


class TestTimeEstimator:
    """Estimates per-task and per-schedule test lengths in clock cycles."""

    def __init__(self, descriptions: Mapping[str, CoreTestDescription],
                 platform: PlatformParameters,
                 memory_words: Mapping[str, int] = None):
        self.descriptions = dict(descriptions)
        self.platform = platform
        self.memory_words = dict(memory_words or {})

    # -- per-task estimates --------------------------------------------------------
    def _description(self, task: TestTask) -> CoreTestDescription:
        try:
            return self.descriptions[task.core]
        except KeyError:
            raise KeyError(f"no core test description for core {task.core!r}")

    def _memory_size(self, task: TestTask) -> int:
        try:
            return self.memory_words[task.core]
        except KeyError:
            raise KeyError(f"no memory size registered for core {task.core!r}")

    def _external_shift_cycles(self, description: CoreTestDescription) -> int:
        """Per-pattern shift cycles under the wrapper parallel-port width
        (the description owns the lane model, so estimator and wrapper TLM
        cannot drift apart)."""
        return description.external_shift_cycles_per_pattern(
            lanes=self.platform.wrapper_parallel_width_bits)

    def _reload_cycles(self, pattern_count: int, ate_words_per_pattern: int) -> int:
        """Total ATE vector-memory reload stalls of an external test."""
        platform = self.platform
        if not platform.ate_vector_memory_words:
            return 0
        capacity_patterns = max(
            1, platform.ate_vector_memory_words // max(1, ate_words_per_pattern))
        reloads = math.ceil(pattern_count / capacity_patterns) - 1
        return max(0, reloads) * platform.ate_reload_cycles

    def estimate_task_cycles(self, task: TestTask) -> int:
        """Estimated test length of *task* in TAM clock cycles."""
        platform = self.platform
        overhead = (platform.configuration_cycles
                    + platform.setup_transactions * platform.tam_overhead_cycles)

        if task.kind is TestKind.LOGIC_BIST:
            description = self._description(task)
            cycles = task.pattern_count * description.shift_cycles_per_pattern()
            return cycles + overhead

        if task.kind is TestKind.EXTERNAL_SCAN:
            description = self._description(task)
            bits = description.stimulus_bits_per_pattern()
            ate_cycles = math.ceil(bits / platform.ate_width_bits)
            tam_cycles = (math.ceil(bits / platform.tam_width_bits)
                          + platform.tam_overhead_cycles)
            shift_cycles = self._external_shift_cycles(description)
            per_pattern = max(ate_cycles, tam_cycles, shift_cycles)
            reload_cycles = self._reload_cycles(task.pattern_count, ate_cycles)
            return task.pattern_count * per_pattern + reload_cycles + overhead

        if task.kind is TestKind.EXTERNAL_SCAN_COMPRESSED:
            description = self._description(task)
            bits = description.stimulus_bits_per_pattern()
            compressed_bits = max(1, math.ceil(bits / task.compression_ratio))
            ate_cycles = math.ceil(compressed_bits / platform.ate_width_bits)
            # Compressed and expanded data both travel over the TAM (the
            # decompressor is a block on the bus, see the SoC architecture).
            tam_cycles = (math.ceil((bits + compressed_bits) / platform.tam_width_bits)
                          + 2 * platform.tam_overhead_cycles)
            # Without internal chains there is no decompressor: the patterns
            # shift through the wrapper parallel port like plain external
            # scan (mirrors TestWrapper.external_shift_cycles_per_pattern).
            if description.internal_chain_count:
                shift_cycles = description.shift_cycles_per_pattern(compressed=True)
            else:
                shift_cycles = self._external_shift_cycles(description)
            per_pattern = max(ate_cycles, tam_cycles, shift_cycles)
            reload_cycles = self._reload_cycles(task.pattern_count, ate_cycles)
            return task.pattern_count * per_pattern + reload_cycles + overhead

        if task.kind is TestKind.MEMORY_BIST_CONTROLLER:
            words = self._memory_size(task)
            operations = (task.march.operation_count(words)
                          + 2 * task.pattern_backgrounds * words)
            cycles = round(operations * platform.controller_cycles_per_memory_op)
            return cycles + overhead

        if task.kind is TestKind.MEMORY_MARCH_PROCESSOR:
            words = self._memory_size(task)
            operations = (task.march.operation_count(words)
                          + 2 * task.pattern_backgrounds * words)
            cycles = round(operations * platform.processor_cycles_per_memory_op)
            return cycles + overhead

        if task.kind is TestKind.FUNCTIONAL:
            return int(task.attributes.get("functional_cycles", 0)) + overhead

        raise ValueError(f"unsupported test kind: {task.kind!r}")

    def estimate_all(self, tasks: Mapping[str, TestTask]) -> Dict[str, int]:
        return {name: self.estimate_task_cycles(task) for name, task in tasks.items()}

    # -- per-schedule estimates --------------------------------------------------------
    def estimate_schedule_cycles(self, schedule: TestSchedule,
                                 tasks: Mapping[str, TestTask]) -> int:
        """Estimated makespan of *schedule*: phases run back to back, tasks in
        a phase run fully concurrently (the coarse scheduler assumption)."""
        schedule.validate(dict(tasks))
        total = 0
        for phase in schedule.phases:
            total += max(self.estimate_task_cycles(tasks[name]) for name in phase)
        return total

    def estimate_schedule_seconds(self, schedule: TestSchedule,
                                  tasks: Mapping[str, TestTask]) -> float:
        return self.platform.cycles_to_seconds(
            self.estimate_schedule_cycles(schedule, tasks)
        )
