"""Test-scheduling algorithms.

Four schedule construction algorithms are provided:

* :func:`sequential_schedule` -- run every test one after another (the
  baseline the paper's schedules 1 and 2 correspond to),
* :func:`greedy_concurrent_schedule` -- a longest-task-first list scheduler
  that packs compatible tests into concurrent phases subject to resource
  conflicts and a power budget (the strategy behind schedules 3 and 4),
* :func:`binpack_power_schedule` -- best-fit-decreasing bin packing where
  each phase is a power window under the budget,
* :func:`local_search_schedule` -- seeded, deterministic simulated annealing
  that improves an initial schedule against a configurable cost (estimated
  makespan, peak power, or a weighted combination).

All of them work on the same coarse information as the estimator; the point
of the paper is that the resulting schedules should then be validated by
simulation.  The registry layer that exposes these algorithms as named,
parameterized *strategies* (the campaign axis) lives in
:mod:`repro.schedule.strategies`.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.schedule.model import TestSchedule, TestTask
from repro.schedule.power import PowerModel


def sequential_schedule(name: str, tasks: Mapping[str, TestTask],
                        order: Optional[Sequence[str]] = None,
                        description: str = "") -> TestSchedule:
    """Build a schedule that runs the given tasks strictly one at a time."""
    task_order = list(order) if order is not None else sorted(tasks)
    for task_name in task_order:
        if task_name not in tasks:
            raise KeyError(f"unknown task {task_name!r}")
    schedule = TestSchedule.sequential(name, task_order, description=description)
    schedule.validate(dict(tasks))
    return schedule


def greedy_concurrent_schedule(name: str, tasks: Mapping[str, TestTask],
                               estimates: Mapping[str, int],
                               power_model: Optional[PowerModel] = None,
                               max_concurrency: Optional[int] = None,
                               description: str = "") -> TestSchedule:
    """Longest-task-first list scheduling into concurrent phases.

    Tasks are considered in order of decreasing estimated length; each task is
    placed into the first phase where it conflicts with nobody, stays within
    the power budget and does not exceed *max_concurrency*.  If no phase fits,
    a new phase is opened.  Phases are finally ordered by decreasing length so
    the longest work starts first (matching the structure of the paper's
    schedules 3 and 4, which front-load the two long core tests).
    """
    for task_name in tasks:
        if task_name not in estimates:
            raise KeyError(f"no estimate for task {task_name!r}")
    power_model = power_model or PowerModel()
    ordered = sorted(tasks, key=lambda task_name: estimates[task_name], reverse=True)
    phases: List[List[str]] = []

    for task_name in ordered:
        task = tasks[task_name]
        placed = False
        for phase in phases:
            if max_concurrency is not None and len(phase) >= max_concurrency:
                continue
            if any(task.conflicts_with(tasks[existing]) for existing in phase):
                continue
            if not power_model.phase_fits_budget(phase + [task_name], tasks):
                continue
            phase.append(task_name)
            placed = True
            break
        if not placed:
            phases.append([task_name])

    phases.sort(
        key=lambda phase: max(estimates[task_name] for task_name in phase),
        reverse=True,
    )
    schedule = TestSchedule(name=name, phases=phases, description=description)
    schedule.validate(dict(tasks))
    return schedule


def _phase_feasible(task_name: str, phase: Sequence[str],
                    tasks: Mapping[str, TestTask],
                    power_model: PowerModel,
                    max_concurrency: Optional[int]) -> bool:
    """Can *task_name* join *phase* without breaking any constraint?"""
    if max_concurrency is not None and len(phase) >= max_concurrency:
        return False
    task = tasks[task_name]
    if any(task.conflicts_with(tasks[existing]) for existing in phase):
        return False
    return power_model.phase_fits_budget(list(phase) + [task_name], tasks)


def binpack_power_schedule(name: str, tasks: Mapping[str, TestTask],
                           estimates: Mapping[str, int],
                           power_model: Optional[PowerModel] = None,
                           max_concurrency: Optional[int] = None,
                           fit: str = "best",
                           description: str = "") -> TestSchedule:
    """Best-fit-decreasing bin packing into power windows.

    Each phase is one *power window*: a bin whose capacity is the peak power
    budget.  Tasks are packed in order of decreasing estimated length; among
    the feasible phases (no resource conflict, power budget and concurrency
    respected) the task goes

    * ``fit="best"`` -- into the phase that minimizes the estimated-makespan
      increase: prefer a phase whose current length already covers the task
      (smallest leftover slack), otherwise the phase the task lengthens the
      least.  This hides short tasks under long ones, which is where the
      greedy first-fit scheduler routinely loses time.
    * ``fit="worst"`` -- into the feasible phase with the most remaining
      power headroom, spreading load to flatten the simulated power profile
      (longer schedules, lower concurrent peaks).

    A new phase is opened when nothing fits.  Phases finally run longest
    first, matching the structure of the paper's concurrent schedules.
    """
    if fit not in ("best", "worst"):
        raise ValueError(f"fit must be 'best' or 'worst', got {fit!r}")
    for task_name in tasks:
        if task_name not in estimates:
            raise KeyError(f"no estimate for task {task_name!r}")
    power_model = power_model or PowerModel()
    ordered = sorted(tasks, key=lambda task_name: estimates[task_name], reverse=True)
    phases: List[List[str]] = []

    def best_fit_key(phase: List[str], task_name: str):
        length = max(estimates[existing] for existing in phase)
        slack = length - estimates[task_name]
        # Phases the task hides under (slack >= 0), tightest first, rank
        # ahead of phases it would stretch (slack < 0), cheapest stretch
        # first.  Phase index breaks ties deterministically.
        return (0, slack) if slack >= 0 else (1, -slack)

    def worst_fit_key(phase: List[str], task_name: str):
        # Lowest resulting phase power == most remaining headroom under any
        # finite budget, and still spreads load when the budget is
        # unlimited (where headroom would be infinite for every phase).
        return power_model.phase_power(phase + [task_name], tasks)

    chooser = best_fit_key if fit == "best" else worst_fit_key
    for task_name in ordered:
        candidates = [
            (chooser(phase, task_name), index)
            for index, phase in enumerate(phases)
            if _phase_feasible(task_name, phase, tasks, power_model,
                               max_concurrency)
        ]
        if candidates:
            _, index = min(candidates)
            phases[index].append(task_name)
        else:
            phases.append([task_name])

    phases.sort(
        key=lambda phase: max(estimates[task_name] for task_name in phase),
        reverse=True,
    )
    schedule = TestSchedule(name=name, phases=phases, description=description)
    schedule.validate(dict(tasks))
    return schedule


def local_search_schedule(name: str, tasks: Mapping[str, TestTask],
                          estimates: Mapping[str, int],
                          power_model: Optional[PowerModel] = None,
                          seed: int = 1, steps: int = 256,
                          cost: str = "combined", peak_weight: float = 0.5,
                          initial: Optional[TestSchedule] = None,
                          max_concurrency: Optional[int] = None,
                          description: str = "") -> TestSchedule:
    """Seeded simulated annealing over schedule phases.

    Starts from *initial* (default: the greedy concurrent schedule) and
    explores neighbor schedules by moving one task to another (or a new)
    phase, or swapping two tasks between phases — only constraint-respecting
    neighbors are considered.  A move is accepted when it improves the cost,
    or with the classic Metropolis probability under a geometrically cooled
    temperature.  The whole walk is driven by ``random.Random(seed)``, so a
    given ``(seed, steps, cost, peak_weight)`` always produces the bitwise
    same schedule, in any process.

    *cost* selects the objective over the coarse estimates:

    * ``"makespan"`` -- estimated test time (sum of phase maxima),
    * ``"peak_power"`` -- estimated peak power (max phase power),
    * ``"combined"`` -- both, normalized by the initial schedule's values and
      mixed with ``peak_weight`` (0: pure makespan, 1: pure peak power).
    """
    if cost not in ("makespan", "peak_power", "combined"):
        raise ValueError(
            f"cost must be 'makespan', 'peak_power' or 'combined', got {cost!r}")
    if not 0.0 <= peak_weight <= 1.0:
        raise ValueError("peak_weight must be in [0, 1]")
    if steps < 0:
        raise ValueError("steps cannot be negative")
    for task_name in tasks:
        if task_name not in estimates:
            raise KeyError(f"no estimate for task {task_name!r}")
    power_model = power_model or PowerModel()
    if initial is None:
        initial = greedy_concurrent_schedule(
            name, tasks, estimates, power_model=power_model,
            max_concurrency=max_concurrency)
    phases = [list(phase) for phase in initial.phases]

    def makespan(candidate: List[List[str]]) -> int:
        return sum(max(estimates[task_name] for task_name in phase)
                   for phase in candidate)

    def peak(candidate: List[List[str]]) -> float:
        return max(power_model.phase_power(phase, tasks) for phase in candidate)

    makespan_scale = float(makespan(phases)) or 1.0
    peak_scale = peak(phases) or 1.0
    weight = {"makespan": 0.0, "peak_power": 1.0, "combined": peak_weight}[cost]

    def cost_of(candidate: List[List[str]]) -> float:
        return ((1.0 - weight) * makespan(candidate) / makespan_scale
                + weight * peak(candidate) / peak_scale)

    rng = random.Random(seed)
    current_cost = cost_of(phases)
    best = [list(phase) for phase in phases]
    best_cost = current_cost
    # Temperature in relative-cost units, cooled to ~1e-3 over the walk.
    temperature = 0.05
    cooling = (1e-3 / temperature) ** (1.0 / steps) if steps else 1.0

    def feasible(task_name: str, phase: Sequence[str]) -> bool:
        return _phase_feasible(task_name, phase, tasks, power_model,
                               max_concurrency)

    for _ in range(steps):
        candidate = [list(phase) for phase in phases]
        if len(candidate) > 1 and rng.random() < 0.5:
            # Swap two tasks between two distinct phases.
            source, target = rng.sample(range(len(candidate)), 2)
            a = rng.randrange(len(candidate[source]))
            b = rng.randrange(len(candidate[target]))
            task_a, task_b = candidate[source][a], candidate[target][b]
            rest_source = [t for t in candidate[source] if t != task_a]
            rest_target = [t for t in candidate[target] if t != task_b]
            if not (feasible(task_b, rest_source) and feasible(task_a, rest_target)):
                temperature *= cooling
                continue
            candidate[source][a] = task_b
            candidate[target][b] = task_a
        else:
            # Move one task to another phase, or into a brand-new phase.
            source = rng.randrange(len(candidate))
            task_name = candidate[source][rng.randrange(len(candidate[source]))]
            target = rng.randrange(len(candidate) + 1)
            if target == source:
                temperature *= cooling
                continue
            if target < len(candidate) and not feasible(task_name,
                                                        candidate[target]):
                temperature *= cooling
                continue
            candidate[source].remove(task_name)
            if target == len(candidate):
                candidate.append([task_name])
            else:
                candidate[target].append(task_name)
            candidate = [phase for phase in candidate if phase]
        new_cost = cost_of(candidate)
        delta = new_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            phases = candidate
            current_cost = new_cost
            if new_cost < best_cost:
                best = [list(phase) for phase in candidate]
                best_cost = new_cost
        temperature *= cooling

    best.sort(
        key=lambda phase: max(estimates[task_name] for task_name in phase),
        reverse=True,
    )
    schedule = TestSchedule(name=name, phases=best, description=description)
    schedule.validate(dict(tasks))
    return schedule


def schedule_makespan_estimate(schedule: TestSchedule,
                               estimates: Mapping[str, int]) -> int:
    """Coarse makespan: sum over phases of the longest task in the phase."""
    total = 0
    for phase in schedule.phases:
        total += max(estimates[task_name] for task_name in phase)
    return total


def compare_schedules(schedules: Sequence[TestSchedule],
                      estimates: Mapping[str, int]) -> Dict[str, int]:
    """Return the estimated makespan of every schedule, keyed by name."""
    return {
        schedule.name: schedule_makespan_estimate(schedule, estimates)
        for schedule in schedules
    }
