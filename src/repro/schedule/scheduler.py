"""Test schedulers.

Two classic strategies are provided:

* :func:`sequential_schedule` -- run every test one after another (the
  baseline the paper's schedules 1 and 2 correspond to),
* :func:`greedy_concurrent_schedule` -- a longest-task-first list scheduler
  that packs compatible tests into concurrent phases subject to resource
  conflicts and a power budget (the strategy behind schedules 3 and 4).

Both work on the same coarse information as the estimator; the point of the
paper is that the resulting schedules should then be validated by simulation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.schedule.model import TestSchedule, TestTask
from repro.schedule.power import PowerModel


def sequential_schedule(name: str, tasks: Mapping[str, TestTask],
                        order: Optional[Sequence[str]] = None,
                        description: str = "") -> TestSchedule:
    """Build a schedule that runs the given tasks strictly one at a time."""
    task_order = list(order) if order is not None else sorted(tasks)
    for task_name in task_order:
        if task_name not in tasks:
            raise KeyError(f"unknown task {task_name!r}")
    schedule = TestSchedule.sequential(name, task_order, description=description)
    schedule.validate(dict(tasks))
    return schedule


def greedy_concurrent_schedule(name: str, tasks: Mapping[str, TestTask],
                               estimates: Mapping[str, int],
                               power_model: Optional[PowerModel] = None,
                               max_concurrency: Optional[int] = None,
                               description: str = "") -> TestSchedule:
    """Longest-task-first list scheduling into concurrent phases.

    Tasks are considered in order of decreasing estimated length; each task is
    placed into the first phase where it conflicts with nobody, stays within
    the power budget and does not exceed *max_concurrency*.  If no phase fits,
    a new phase is opened.  Phases are finally ordered by decreasing length so
    the longest work starts first (matching the structure of the paper's
    schedules 3 and 4, which front-load the two long core tests).
    """
    for task_name in tasks:
        if task_name not in estimates:
            raise KeyError(f"no estimate for task {task_name!r}")
    power_model = power_model or PowerModel()
    ordered = sorted(tasks, key=lambda task_name: estimates[task_name], reverse=True)
    phases: List[List[str]] = []

    for task_name in ordered:
        task = tasks[task_name]
        placed = False
        for phase in phases:
            if max_concurrency is not None and len(phase) >= max_concurrency:
                continue
            if any(task.conflicts_with(tasks[existing]) for existing in phase):
                continue
            if not power_model.phase_fits_budget(phase + [task_name], tasks):
                continue
            phase.append(task_name)
            placed = True
            break
        if not placed:
            phases.append([task_name])

    phases.sort(
        key=lambda phase: max(estimates[task_name] for task_name in phase),
        reverse=True,
    )
    schedule = TestSchedule(name=name, phases=phases, description=description)
    schedule.validate(dict(tasks))
    return schedule


def schedule_makespan_estimate(schedule: TestSchedule,
                               estimates: Mapping[str, int]) -> int:
    """Coarse makespan: sum over phases of the longest task in the phase."""
    total = 0
    for phase in schedule.phases:
        total += max(estimates[task_name] for task_name in phase)
    return total


def compare_schedules(schedules: Sequence[TestSchedule],
                      estimates: Mapping[str, int]) -> Dict[str, int]:
    """Return the estimated makespan of every schedule, keyed by name."""
    return {
        schedule.name: schedule_makespan_estimate(schedule, estimates)
        for schedule in schedules
    }
