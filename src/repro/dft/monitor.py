"""Monitors deriving evaluation metrics from the simulation.

The paper's point is that accurate numbers for TAM utilization and power are
obtained by *simulating* the schedule rather than from the coarse information
available to the scheduler.  The monitors in this module compute exactly the
quantities of Table I (peak and average TAM utilization) plus a test power
profile, all from the transaction/activity streams recorded during
simulation.

Like the transaction tracer, the :class:`ActivityLog` stores its intervals
columnar-style as integer femtoseconds; :class:`ActivityRecord` objects are
materialized lazily and the power queries run directly over the integer
columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.kernel.clock import Clock
from repro.kernel.simtime import SimTime
from repro.kernel.tracing import TransactionTracer


class TamUtilizationMonitor:
    """Computes TAM utilization figures from a transaction tracer."""

    def __init__(self, tracer: TransactionTracer, channel_name: str, clock: Clock):
        self.tracer = tracer
        self.channel_name = channel_name
        self.clock = clock

    # -- bounds -----------------------------------------------------------------
    def _bounds(self, start: Optional[SimTime],
                end: Optional[SimTime]) -> Tuple[Optional[SimTime], Optional[SimTime]]:
        bounds = self.tracer.bounds_fs(self.channel_name)
        if bounds is None:
            return None, None
        if start is None:
            start = SimTime(bounds[0])
        if end is None:
            end = SimTime(bounds[1])
        return start, end

    # -- metrics -------------------------------------------------------------------
    def busy_time(self, start: Optional[SimTime] = None,
                  end: Optional[SimTime] = None) -> SimTime:
        """Total time the TAM was occupied within [start, end)."""
        start, end = self._bounds(start, end)
        if start is None:
            return SimTime(0)
        return SimTime(self.tracer.busy_fs_in_window(
            self.channel_name, start.femtoseconds, end.femtoseconds))

    def average_utilization(self, start: Optional[SimTime] = None,
                            end: Optional[SimTime] = None) -> float:
        """Average TAM utilization over [start, end) (0.0 .. 1.0)."""
        if start is None or end is None:
            bounded_start, bounded_end = self._bounds(start, end)
            start = start if start is not None else bounded_start
            end = end if end is not None else bounded_end
        if start is None or end is None or end <= start:
            return 0.0
        return self.tracer.utilization(self.channel_name, start, end)

    def peak_utilization(self, window_cycles: int = 1_000_000,
                         start: Optional[SimTime] = None,
                         end: Optional[SimTime] = None) -> float:
        """Peak TAM utilization: maximum utilization over fixed windows.

        The window defaults to one million TAM clock cycles, i.e. the peak is
        the busiest million-cycle stretch of the schedule.
        """
        start, end = (start, end) if (start is not None and end is not None) \
            else self._bounds(start, end)
        if start is None or end is None or end <= start:
            return 0.0
        window = self.clock.cycles(window_cycles)
        profile = self.tracer.utilization_profile(
            self.channel_name, window, start=start, end=end
        )
        return max(profile) if profile else 0.0

    def utilization_profile(self, window_cycles: int = 1_000_000,
                            start: Optional[SimTime] = None,
                            end: Optional[SimTime] = None) -> List[float]:
        """Per-window utilization series (for plotting exploration results)."""
        start, end = (start, end) if (start is not None and end is not None) \
            else self._bounds(start, end)
        if start is None or end is None or end <= start:
            return []
        window = self.clock.cycles(window_cycles)
        return self.tracer.utilization_profile(
            self.channel_name, window, start=start, end=end
        )

    def transferred_bits(self) -> int:
        """Total payload bits moved over the TAM."""
        return self.tracer.data_bits_total(self.channel_name)


@dataclass
class ActivityRecord:
    """One interval of test activity on a core (materialized view)."""

    core: str
    kind: str
    start: SimTime
    end: SimTime
    power: float

    @property
    def duration(self) -> SimTime:
        return self.end - self.start


class ActivityLog:
    """Collects per-core activity intervals during schedule execution."""

    __slots__ = ("enabled", "_cores", "_kinds", "_starts_fs", "_ends_fs",
                 "_powers")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._cores: List[str] = []
        self._kinds: List[str] = []
        self._starts_fs: List[int] = []
        self._ends_fs: List[int] = []
        self._powers: List[float] = []

    def record_fs(self, core: str, kind: str, start_fs: int, end_fs: int,
                  power: float) -> None:
        """Append one interval from integer-femtosecond endpoints (hot path)."""
        # Validate before the enabled check so a model bug surfaces no
        # matter whether activity logging happens to be on.
        if end_fs < start_fs:
            raise ValueError("activity interval end precedes start")
        if not self.enabled:
            return
        self._cores.append(core)
        self._kinds.append(kind)
        self._starts_fs.append(start_fs)
        self._ends_fs.append(end_fs)
        self._powers.append(power)

    def record(self, core: str, kind: str, start: Union[SimTime, int],
               end: Union[SimTime, int], power: float) -> None:
        """Append one interval given :class:`SimTime` endpoints."""
        self.record_fs(core, kind,
                       SimTime.coerce(start).femtoseconds,
                       SimTime.coerce(end).femtoseconds, power)

    def clear(self) -> None:
        for column in (self._cores, self._kinds, self._starts_fs,
                       self._ends_fs, self._powers):
            column.clear()

    @property
    def records(self) -> List[ActivityRecord]:
        """All intervals as lazily materialized records."""
        return [
            ActivityRecord(core=self._cores[index], kind=self._kinds[index],
                           start=SimTime(self._starts_fs[index]),
                           end=SimTime(self._ends_fs[index]),
                           power=self._powers[index])
            for index in range(len(self._cores))
        ]

    def cores(self) -> List[str]:
        return sorted(set(self._cores))

    def bounds_fs(self) -> Optional[Tuple[int, int]]:
        if not self._cores:
            return None
        return min(self._starts_fs), max(self._ends_fs)

    # -- columnar queries (the monitors build on these, so the storage
    # -- layout stays private to the log) -----------------------------------
    def power_at_fs(self, time_fs: int) -> float:
        """Sum of the power of every interval active at *time_fs*."""
        starts = self._starts_fs
        ends = self._ends_fs
        powers = self._powers
        return sum(
            powers[index]
            for index in range(len(starts))
            if starts[index] <= time_fs < ends[index]
        )

    def boundaries_fs(self) -> List[int]:
        """Sorted sampling points: every interval start and last-busy fs."""
        boundaries = set(self._starts_fs)
        for end_fs in self._ends_fs:
            boundaries.add(end_fs - 1)
        return sorted(b for b in boundaries if b >= 0)

    def energy_fs(self) -> float:
        """Total energy in power-units x femtoseconds."""
        starts = self._starts_fs
        ends = self._ends_fs
        powers = self._powers
        return sum(
            powers[index] * (ends[index] - starts[index])
            for index in range(len(starts))
        )

    def window_energy_fs(self, window_start_fs: int,
                         window_end_fs: int) -> float:
        """Energy (power-units x fs) of the overlap with [start, end)."""
        starts = self._starts_fs
        ends = self._ends_fs
        powers = self._powers
        energy = 0.0
        for index in range(len(starts)):
            overlap_start = max(starts[index], window_start_fs)
            overlap_end = min(ends[index], window_end_fs)
            if overlap_end > overlap_start:
                energy += powers[index] * (overlap_end - overlap_start)
        return energy

    def per_core_energy_fs(self) -> Dict[str, float]:
        """Energy (power-units x fs) contributed by each core."""
        energies: Dict[str, float] = {}
        for index in range(len(self._cores)):
            joule_fs = self._powers[index] * (self._ends_fs[index]
                                              - self._starts_fs[index])
            core = self._cores[index]
            energies[core] = energies.get(core, 0.0) + joule_fs
        return energies

    def __len__(self) -> int:
        return len(self._cores)


class PowerMonitor:
    """Derives a test power profile from an :class:`ActivityLog`.

    Power is expressed in the same arbitrary units as the per-core test power
    weights of the CTL descriptions; what matters for scheduling is the
    *relative* profile and its peak against the power budget.
    """

    def __init__(self, log: ActivityLog):
        self.log = log

    def _bounds(self) -> Tuple[Optional[SimTime], Optional[SimTime]]:
        bounds = self.log.bounds_fs()
        if bounds is None:
            return None, None
        return SimTime(bounds[0]), SimTime(bounds[1])

    def power_at(self, time: SimTime) -> float:
        """Instantaneous power: sum of the power of all active intervals."""
        return self.log.power_at_fs(SimTime.coerce(time).femtoseconds)

    def peak_power(self) -> float:
        """Peak power over the schedule (sampled at interval boundaries)."""
        log = self.log
        if not len(log):
            return 0.0
        return max(log.power_at_fs(b) for b in log.boundaries_fs())

    def average_power(self) -> float:
        """Energy divided by makespan."""
        bounds = self.log.bounds_fs()
        if bounds is None or bounds[1] <= bounds[0]:
            return 0.0
        return self.log.energy_fs() / (bounds[1] - bounds[0])

    def energy(self) -> float:
        """Total energy in power-units x seconds."""
        return self.log.energy_fs() / 1e15

    def profile(self, window: SimTime) -> List[Tuple[SimTime, float]]:
        """Average power per window across the schedule."""
        bounds = self.log.bounds_fs()
        if bounds is None:
            return []
        start_fs, end_fs = bounds
        window_fs = window.femtoseconds
        if window_fs <= 0:
            raise ValueError("window must be positive")
        profile = []
        cursor = start_fs
        while cursor < end_fs:
            upper = min(cursor + window_fs, end_fs)
            span = upper - cursor
            energy = self.log.window_energy_fs(cursor, upper)
            profile.append((SimTime(cursor), energy / span if span else 0.0))
            cursor = upper
        return profile

    def per_core_energy(self) -> Dict[str, float]:
        """Energy contribution of each core (power-units x seconds)."""
        return {core: joule_fs / 1e15
                for core, joule_fs in self.log.per_core_energy_fs().items()}
