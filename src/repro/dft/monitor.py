"""Monitors deriving evaluation metrics from the simulation.

The paper's point is that accurate numbers for TAM utilization and power are
obtained by *simulating* the schedule rather than from the coarse information
available to the scheduler.  The monitors in this module compute exactly the
quantities of Table I (peak and average TAM utilization) plus a test power
profile, all from the transaction/activity streams recorded during
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel.clock import Clock
from repro.kernel.simtime import SimTime
from repro.kernel.tracing import TransactionTracer


class TamUtilizationMonitor:
    """Computes TAM utilization figures from a transaction tracer."""

    def __init__(self, tracer: TransactionTracer, channel_name: str, clock: Clock):
        self.tracer = tracer
        self.channel_name = channel_name
        self.clock = clock

    # -- bounds -----------------------------------------------------------------
    def _bounds(self, start: Optional[SimTime],
                end: Optional[SimTime]) -> Tuple[Optional[SimTime], Optional[SimTime]]:
        records = self.tracer.for_channel(self.channel_name)
        if not records:
            return None, None
        if start is None:
            start = min(r.start for r in records)
        if end is None:
            end = max(r.end for r in records)
        return start, end

    # -- metrics -------------------------------------------------------------------
    def busy_time(self, start: Optional[SimTime] = None,
                  end: Optional[SimTime] = None) -> SimTime:
        """Total time the TAM was occupied within [start, end)."""
        start, end = self._bounds(start, end)
        if start is None:
            return SimTime(0)
        busy_fraction = self.tracer.utilization(self.channel_name, start, end)
        return SimTime(round(busy_fraction * (end - start).femtoseconds))

    def average_utilization(self, start: Optional[SimTime] = None,
                            end: Optional[SimTime] = None) -> float:
        """Average TAM utilization over [start, end) (0.0 .. 1.0)."""
        if start is None or end is None:
            bounded_start, bounded_end = self._bounds(start, end)
            start = start if start is not None else bounded_start
            end = end if end is not None else bounded_end
        if start is None or end is None or end <= start:
            return 0.0
        return self.tracer.utilization(self.channel_name, start, end)

    def peak_utilization(self, window_cycles: int = 1_000_000,
                         start: Optional[SimTime] = None,
                         end: Optional[SimTime] = None) -> float:
        """Peak TAM utilization: maximum utilization over fixed windows.

        The window defaults to one million TAM clock cycles, i.e. the peak is
        the busiest million-cycle stretch of the schedule.
        """
        start, end = (start, end) if (start is not None and end is not None) \
            else self._bounds(start, end)
        if start is None or end is None or end <= start:
            return 0.0
        window = self.clock.cycles(window_cycles)
        profile = self.tracer.utilization_profile(
            self.channel_name, window, start=start, end=end
        )
        return max(profile) if profile else 0.0

    def utilization_profile(self, window_cycles: int = 1_000_000,
                            start: Optional[SimTime] = None,
                            end: Optional[SimTime] = None) -> List[float]:
        """Per-window utilization series (for plotting exploration results)."""
        start, end = (start, end) if (start is not None and end is not None) \
            else self._bounds(start, end)
        if start is None or end is None or end <= start:
            return []
        window = self.clock.cycles(window_cycles)
        return self.tracer.utilization_profile(
            self.channel_name, window, start=start, end=end
        )

    def transferred_bits(self) -> int:
        """Total payload bits moved over the TAM."""
        return sum(r.data_bits for r in self.tracer.for_channel(self.channel_name))


@dataclass
class ActivityRecord:
    """One interval of test activity on a core (used for power analysis)."""

    core: str
    kind: str
    start: SimTime
    end: SimTime
    power: float

    @property
    def duration(self) -> SimTime:
        return self.end - self.start


class ActivityLog:
    """Collects :class:`ActivityRecord` intervals during schedule execution."""

    def __init__(self):
        self.records: List[ActivityRecord] = []

    def record(self, core: str, kind: str, start: SimTime, end: SimTime,
               power: float) -> ActivityRecord:
        if end < start:
            raise ValueError("activity interval end precedes start")
        entry = ActivityRecord(core=core, kind=kind, start=start, end=end, power=power)
        self.records.append(entry)
        return entry

    def clear(self) -> None:
        self.records.clear()

    def cores(self) -> List[str]:
        return sorted({r.core for r in self.records})

    def __len__(self) -> int:
        return len(self.records)


class PowerMonitor:
    """Derives a test power profile from an :class:`ActivityLog`.

    Power is expressed in the same arbitrary units as the per-core test power
    weights of the CTL descriptions; what matters for scheduling is the
    *relative* profile and its peak against the power budget.
    """

    def __init__(self, log: ActivityLog):
        self.log = log

    def _bounds(self) -> Tuple[Optional[SimTime], Optional[SimTime]]:
        if not self.log.records:
            return None, None
        start = min(r.start for r in self.log.records)
        end = max(r.end for r in self.log.records)
        return start, end

    def power_at(self, time: SimTime) -> float:
        """Instantaneous power: sum of the power of all active intervals."""
        return sum(
            r.power for r in self.log.records if r.start <= time < r.end
        )

    def peak_power(self, samples: int = 512) -> float:
        """Peak power over the schedule (sampled at interval boundaries)."""
        if not self.log.records:
            return 0.0
        boundaries = set()
        for record in self.log.records:
            boundaries.add(record.start.femtoseconds)
            boundaries.add(record.end.femtoseconds - 1)
        return max(self.power_at(SimTime(b)) for b in sorted(boundaries) if b >= 0)

    def average_power(self) -> float:
        """Energy divided by makespan."""
        start, end = self._bounds()
        if start is None or end <= start:
            return 0.0
        total = (end - start).femtoseconds
        energy = sum(
            r.power * r.duration.femtoseconds for r in self.log.records
        )
        return energy / total

    def energy(self) -> float:
        """Total energy in power-units x seconds."""
        return sum(
            r.power * r.duration.to(1_000_000_000_000_000)
            for r in self.log.records
        )

    def profile(self, window: SimTime) -> List[Tuple[SimTime, float]]:
        """Average power per window across the schedule."""
        start, end = self._bounds()
        if start is None:
            return []
        if window.femtoseconds <= 0:
            raise ValueError("window must be positive")
        profile = []
        cursor = start
        while cursor < end:
            upper = min(SimTime(cursor.femtoseconds + window.femtoseconds), end)
            span = (upper - cursor).femtoseconds
            energy = 0.0
            for record in self.log.records:
                overlap_start = max(record.start.femtoseconds, cursor.femtoseconds)
                overlap_end = min(record.end.femtoseconds, upper.femtoseconds)
                if overlap_end > overlap_start:
                    energy += record.power * (overlap_end - overlap_start)
            profile.append((cursor, energy / span if span else 0.0))
            cursor = upper
        return profile

    def per_core_energy(self) -> Dict[str, float]:
        """Energy contribution of each core (power-units x seconds)."""
        energies: Dict[str, float] = {}
        for record in self.log.records:
            energies.setdefault(record.core, 0.0)
            energies[record.core] += record.power * record.duration.to(
                1_000_000_000_000_000
            )
        return energies
