"""Automated test equipment (ATE) model and virtual test programs.

The ATE configures the test infrastructure, initiates individual tests,
supplies test stimuli, evaluates test responses and executes the overall test
flow (paper, Section III-E).  During exploration the ATE is modeled by its
functional behaviour; for validation, the same model executes a *test
program* — an explicit instruction list — which is the virtual-ATE use case
the paper refers to.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.kernel.channel import Channel
from repro.kernel.event import AllOf, AnyOf, Timeout
from repro.kernel.module import Module
from repro.kernel.simtime import SimTime
from repro.kernel.simulator import Simulator
from repro.schedule.model import TestKind, TestSchedule, TestTask
from repro.dft.compression import Compactor, Decompressor
from repro.dft.config_bus import ConfigurationScanBus
from repro.dft.controller import TestController
from repro.dft.ebi import ExternalBusInterface, ExternalTestTiming
from repro.dft.monitor import ActivityLog
from repro.dft.payload import TamPayload
from repro.dft.tam import AteLink, TamChannel
from repro.dft.wrapper import TestWrapper, WrapperMode


@dataclass
class TestArchitecture:
    """Handles to every test infrastructure block the ATE interacts with."""

    tam: TamChannel
    ate_link: AteLink
    ebi: ExternalBusInterface
    config_bus: ConfigurationScanBus
    controller: TestController
    wrappers: Dict[str, TestWrapper] = field(default_factory=dict)
    decompressors: Dict[str, Decompressor] = field(default_factory=dict)
    compactors: Dict[str, Compactor] = field(default_factory=dict)
    memory_cores: Dict[str, object] = field(default_factory=dict)
    processor_cores: Dict[str, object] = field(default_factory=dict)
    #: TAM base address of each wrapped core / infrastructure block.
    addresses: Dict[str, int] = field(default_factory=dict)
    activity_log: ActivityLog = field(default_factory=ActivityLog)

    def wrapper_for(self, core: str) -> TestWrapper:
        try:
            return self.wrappers[core]
        except KeyError:
            raise KeyError(f"no test wrapper registered for core {core!r}")

    def address_of(self, core: str) -> int:
        return self.addresses.get(core, 0)


class StepKind(enum.Enum):
    """Instruction kinds of the virtual ATE test program."""

    CONFIGURE = "configure"
    RUN_TASK = "run_task"
    BARRIER = "barrier"
    WAIT_CYCLES = "wait_cycles"
    READ_STATUS = "read_status"


@dataclass
class TestProgramStep:
    """One instruction of a virtual ATE test program."""

    kind: StepKind
    task: Optional[str] = None
    target: Optional[str] = None
    value: int = 0
    cycles: int = 0
    comment: str = ""


@dataclass
class TestProgram:
    """A virtual ATE test program (ordered list of instructions)."""

    name: str
    steps: List[TestProgramStep] = field(default_factory=list)

    @classmethod
    def from_schedule(cls, schedule: TestSchedule,
                      tasks: Mapping[str, TestTask]) -> "TestProgram":
        """Compile a test schedule into an explicit test program.

        Every phase becomes a group of ``RUN_TASK`` instructions terminated by
        a ``BARRIER`` — the ATE starts the phase's tests concurrently and
        waits for all of them before moving on, which is exactly the schedule
        semantics assumed by the coarse scheduler.
        """
        schedule.validate(dict(tasks))
        steps: List[TestProgramStep] = []
        for phase_index, phase in enumerate(schedule.phases):
            for task_name in phase:
                steps.append(TestProgramStep(
                    kind=StepKind.RUN_TASK, task=task_name,
                    comment=f"phase {phase_index}",
                ))
            steps.append(TestProgramStep(
                kind=StepKind.BARRIER, comment=f"end of phase {phase_index}",
            ))
        return cls(name=f"{schedule.name}_program", steps=steps)

    def __len__(self) -> int:
        return len(self.steps)


@dataclass
class TaskExecutionResult:
    """Simulation outcome of a single test task."""

    task_name: str
    core: str
    kind: TestKind
    start: SimTime
    end: SimTime
    cycles: int
    patterns_applied: int = 0
    signature: Optional[int] = None
    signature_ok: Optional[bool] = None
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> SimTime:
        return self.end - self.start


@dataclass
class ScheduleExecutionResult:
    """Simulation outcome of a complete schedule / test program."""

    name: str
    start: SimTime
    end: SimTime
    cycles: int
    task_results: Dict[str, TaskExecutionResult] = field(default_factory=dict)

    @property
    def duration(self) -> SimTime:
        return self.end - self.start

    @property
    def all_signatures_ok(self) -> bool:
        return all(result.signature_ok is not False
                   for result in self.task_results.values())


class AutomatedTestEquipment(Channel):
    """The ATE: executes test programs against the SoC's test architecture."""

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 architecture: TestArchitecture,
                 status_poll_fraction: float = 0.05,
                 burst_patterns: int = 64,
                 vector_memory_words: int = 0,
                 reload_cycles: int = 25_000):
        super().__init__(parent, name)
        if not 0.0 < status_poll_fraction <= 1.0:
            raise ValueError("status_poll_fraction must be in (0, 1]")
        if vector_memory_words < 0:
            raise ValueError("vector_memory_words cannot be negative")
        if reload_cycles < 0:
            raise ValueError("reload_cycles cannot be negative")
        self.architecture = architecture
        self.status_poll_fraction = status_poll_fraction
        self.burst_patterns = burst_patterns
        #: Stimulus vector memory behind the ATE link, in link words (one
        #: word = one ATE-link cycle).  0 models an unlimited buffer; a
        #: finite memory forces a workstation reload every time a test's
        #: stimuli exhaust it, stalling the stream for :attr:`reload_cycles`.
        self.vector_memory_words = vector_memory_words
        self.reload_cycles = reload_cycles
        self.vector_memory_reloads = 0
        self.programs_executed = 0

    # -- program execution ------------------------------------------------------------
    def execute_schedule(self, schedule: TestSchedule,
                         tasks: Mapping[str, TestTask]):
        """Execute *schedule* (blocking; ``yield from``); returns the result."""
        program = TestProgram.from_schedule(schedule, tasks)
        result = yield from self.run_program(program, tasks,
                                             result_name=schedule.name)
        return result

    def run_program(self, program: TestProgram, tasks: Mapping[str, TestTask],
                    result_name: Optional[str] = None):
        """Execute a virtual ATE test program (blocking; ``yield from``)."""
        architecture = self.architecture
        clock = architecture.tam.clock
        start_time = self.sim.now
        result = ScheduleExecutionResult(
            name=result_name or program.name, start=start_time, end=start_time,
            cycles=0,
        )
        outstanding = []

        # Bring up the infrastructure: the test controller is enabled once at
        # the start of the test program via the configuration scan bus.
        yield from architecture.config_bus.configure(
            architecture.controller.config_register.name, 1, initiator=self.name,
        )

        for step in program.steps:
            if step.kind is StepKind.RUN_TASK:
                task = tasks[step.task]
                process = self.sim.spawn(
                    self._execute_task(task, result),
                    name=f"{self.name}.{task.name}",
                )
                outstanding.append(process)
            elif step.kind is StepKind.BARRIER:
                if outstanding:
                    pending = [p.finished for p in outstanding if p.alive]
                    if pending:
                        yield AllOf(pending)
                    outstanding = []
            elif step.kind is StepKind.CONFIGURE:
                yield from architecture.config_bus.configure(
                    step.target, step.value, initiator=self.name,
                )
            elif step.kind is StepKind.WAIT_CYCLES:
                yield Timeout(clock.cycles(step.cycles))
            elif step.kind is StepKind.READ_STATUS:
                payload = TamPayload.read(
                    architecture.addresses.get("test_controller", 0),
                    response_bits=architecture.controller.status_poll_bits,
                    session=step.target,
                )
                payload.initiator = self.name
                yield from architecture.tam.read(payload)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unsupported program step: {step.kind!r}")

        if outstanding:
            pending = [p.finished for p in outstanding if p.alive]
            if pending:
                yield AllOf(pending)

        end_time = self.sim.now
        result.end = end_time
        result.cycles = clock.cycles_between(start_time, end_time)
        self.programs_executed += 1
        return result

    # -- per-task execution -----------------------------------------------------------
    def _execute_task(self, task: TestTask, result: ScheduleExecutionResult):
        dispatch = {
            TestKind.LOGIC_BIST: self._run_logic_bist,
            TestKind.EXTERNAL_SCAN: self._run_external_scan,
            TestKind.EXTERNAL_SCAN_COMPRESSED: self._run_external_scan,
            TestKind.MEMORY_BIST_CONTROLLER: self._run_memory_bist,
            TestKind.MEMORY_MARCH_PROCESSOR: self._run_memory_march,
        }
        try:
            handler = dispatch[task.kind]
        except KeyError:
            raise ValueError(f"the ATE cannot execute test kind {task.kind!r}")
        start = self.sim.now
        details = yield from handler(task)
        end = self.sim.now
        clock = self.architecture.tam.clock
        task_result = TaskExecutionResult(
            task_name=task.name, core=task.core, kind=task.kind,
            start=start, end=end, cycles=clock.cycles_between(start, end),
            patterns_applied=int(details.pop("patterns_applied", 0)),
            signature=details.pop("signature", None),
            details=details,
        )
        expected = task.attributes.get("expected_signature")
        if expected is not None and task_result.signature is not None:
            task_result.signature_ok = (task_result.signature == expected)
        result.task_results[task.name] = task_result
        return task_result

    # -- logic BIST (tests 1 and 4) ---------------------------------------------------------
    def _run_logic_bist(self, task: TestTask):
        architecture = self.architecture
        wrapper = architecture.wrapper_for(task.core)
        clock = architecture.tam.clock
        yield from architecture.config_bus.configure(
            wrapper.wir_register.name,
            wrapper.wir.encode(WrapperMode.INTEST_BIST),
            initiator=self.name,
        )
        start_payload = TamPayload.write(
            architecture.address_of(task.core), data_bits=32,
            data={"command": "start_bist", "patterns": task.pattern_count},
        )
        start_payload.initiator = self.name
        yield from architecture.tam.write(start_payload)

        session = f"{task.name}@{task.core}"
        bist_process = self.sim.spawn(
            architecture.controller.run_logic_bist(
                session, wrapper, task.pattern_count, power=task.power,
            ),
            name=f"{self.name}.{task.name}.bist",
        )
        total_cycles = task.pattern_count * wrapper.shift_cycles_per_pattern()
        poll_cycles = max(1, round(total_cycles * self.status_poll_fraction))
        polls = 0
        controller_address = architecture.addresses.get(
            "test_controller", architecture.address_of(task.core)
        )
        while bist_process.alive:
            timer = self.sim.event(f"{self.name}.{task.name}.poll")
            timer.notify(clock.cycles(poll_cycles))
            yield AnyOf([timer, bist_process.finished])
            if not bist_process.alive:
                break
            poll_payload = TamPayload.read(
                controller_address,
                response_bits=architecture.controller.status_poll_bits,
                session=session,
            )
            poll_payload.initiator = f"{self.name}.{task.name}"
            yield from architecture.tam.read(poll_payload)
            polls += 1

        signature_payload = TamPayload.read(
            architecture.address_of(task.core), response_bits=64, session=session,
        )
        signature_payload.initiator = f"{self.name}.{task.name}"
        yield from architecture.tam.read(signature_payload)
        return {
            "patterns_applied": task.pattern_count,
            "signature": wrapper.signature,
            "session": session,
            "status_polls": polls,
        }

    # -- external scan tests (tests 2, 3 and 5) -----------------------------------------------
    def _run_external_scan(self, task: TestTask):
        architecture = self.architecture
        wrapper = architecture.wrapper_for(task.core)
        compressed = task.kind is TestKind.EXTERNAL_SCAN_COMPRESSED
        decompressor = architecture.decompressors.get(task.core) if compressed else None
        compactor = architecture.compactors.get(task.core)

        mode = WrapperMode.INTEST_COMPRESSED if compressed else WrapperMode.INTEST_SCAN
        yield from architecture.config_bus.configure(
            wrapper.wir_register.name, wrapper.wir.encode(mode),
            initiator=self.name,
        )
        if decompressor is not None:
            yield from architecture.config_bus.configure(
                decompressor.config_register.name, Decompressor.MODE_ACTIVE,
                initiator=self.name,
            )
        if compactor is not None:
            yield from architecture.config_bus.configure(
                compactor.config_register.name, Compactor.MODE_ACTIVE,
                initiator=self.name,
            )
        yield from architecture.config_bus.configure(
            architecture.ebi.config_register.name, 1, initiator=self.name,
        )

        stimulus_bits = wrapper.stimulus_bits_per_pattern()
        response_bits = wrapper.response_bits_per_pattern()
        if compressed:
            ratio = task.compression_ratio
            ate_bits = max(1, math.ceil(stimulus_bits / ratio))
            tam_bits = ate_bits + stimulus_bits
            shift = wrapper.external_shift_cycles_per_pattern(compressed=True)
        else:
            ate_bits = stimulus_bits
            tam_bits = stimulus_bits
            shift = wrapper.external_shift_cycles_per_pattern(compressed=False)
        if compactor is not None:
            ate_response_bits = compactor.misr.width
        else:
            ate_response_bits = response_bits

        timing = ExternalTestTiming(
            ate_bits_per_pattern=ate_bits,
            ate_response_bits_per_pattern=ate_response_bits,
            tam_bits_per_pattern=tam_bits,
            shift_cycles_per_pattern=shift,
        )
        # A finite ATE vector memory holds only so many stimulus words; the
        # stream stalls for a workstation reload whenever a test's stimuli
        # exhaust the buffer.  0 = unlimited (classic behaviour).
        capacity_patterns = task.pattern_count
        if self.vector_memory_words:
            link = architecture.ate_link
            words_per_pattern = max(1, link.transfer_cycles(ate_bits))
            capacity_patterns = max(
                1, self.vector_memory_words // words_per_pattern)
        clock = architecture.tam.clock
        stats = None
        remaining = task.pattern_count
        reloads = 0
        while remaining > 0:
            chunk = min(remaining, capacity_patterns)
            if stats is not None:
                # Not the first chunk: the vector memory must be refilled
                # before streaming resumes.
                yield Timeout(clock.cycles(self.reload_cycles))
                reloads += 1
                self.vector_memory_reloads += 1
            chunk_start_fs = self.sim.now_fs
            chunk_stats = yield from architecture.ebi.stream_patterns(
                initiator=f"{self.name}.{task.name}",
                address=architecture.address_of(task.core),
                patterns=chunk,
                timing=timing,
                wrapper=wrapper,
                decompressor=decompressor,
                compactor=compactor,
                burst_patterns=self.burst_patterns,
            )
            # One activity interval per streamed chunk (cold path; record_fs
            # handles the disabled case itself): the core draws test power
            # only while patterns actually stream — a reload stall leaves it
            # idle, so stalls must not inflate the power metrics.
            architecture.activity_log.record_fs(
                task.core, task.kind.value, chunk_start_fs, self.sim.now_fs,
                task.power)
            if stats is None:
                stats = chunk_stats
            else:
                for key, value in chunk_stats.items():
                    stats[key] += value
            remaining -= chunk
        stats["vector_memory_reloads"] = reloads
        return {
            "patterns_applied": stats["patterns"],
            "signature": compactor.signature if compactor is not None else wrapper.signature,
            "stream_stats": stats,
        }

    # -- controller-driven memory BIST (test 6) ------------------------------------------------
    def _run_memory_bist(self, task: TestTask):
        architecture = self.architecture
        memory_core = architecture.memory_cores[task.core]
        yield from architecture.config_bus.configure(
            architecture.controller.config_register.name, 1, initiator=self.name,
        )
        session = f"{task.name}@{task.core}"
        status = yield from architecture.controller.run_memory_bist(
            session, memory_core, task.march,
            pattern_backgrounds=task.pattern_backgrounds,
            power=task.power,
        )
        return {
            "patterns_applied": 0,
            "operations": status["operations_done"],
            "failures": status["failures"],
            "march_passed": status["failures"] == 0,
        }

    # -- processor-driven memory march (test 7) --------------------------------------------------
    def _run_memory_march(self, task: TestTask):
        architecture = self.architecture
        processor_name = task.attributes.get("processor_core", "processor")
        processor = architecture.processor_cores[processor_name]
        memory_core = architecture.memory_cores[task.core]
        command = TamPayload.write(
            architecture.address_of(processor_name), data_bits=64,
            data={"command": "run_memory_march", "target": task.core},
        )
        command.initiator = self.name
        yield from architecture.tam.write(command)
        start_fs = self.sim.now_fs
        status = yield from processor.run_memory_march(
            memory_core, task.march,
            pattern_backgrounds=task.pattern_backgrounds,
        )
        architecture.activity_log.record_fs(
            task.core, task.kind.value, start_fs, self.sim.now_fs, task.power)
        return {
            "patterns_applied": 0,
            "operations": status["operations"],
            "failures": status["failures"],
            "march_passed": status["failures"] == 0,
        }
