"""IEEE 1500-style test wrapper TLM (paper, Section III-B and Figure 3).

A test wrapper is a thin shell around a core.  Its wrapper instruction
register (WIR) is written through the configuration scan bus; depending on the
configured mode, transactions arriving from the TAM are either forwarded to
the core (functional/bypass mode) or interpreted as test data (test modes).
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.kernel.channel import Channel
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.kernel.tracing import TransactionTracer
from repro.rtl.lfsr import LFSR, MISR
from repro.rtl.faults import enumerate_faults
from repro.rtl.simulation import FaultSimulator, ScanPattern
from repro.dft.config_bus import ConfigurableRegister
from repro.dft.ctl import CoreTestDescription
from repro.dft.payload import TamCommand, TamPayload, TamResponse


class WrapperMode(enum.Enum):
    """Operating modes of the wrapper, encoded in the WIR.

    The mandatory IEEE 1500 modes relevant to the paper's case study are
    modeled: functional (wrapper transparent), bypass, internal scan test via
    the TAM (serial or through a decompressor), internal logic BIST and
    external interconnect test.
    """

    FUNCTIONAL = 0
    BYPASS = 1
    INTEST_SCAN = 2
    INTEST_COMPRESSED = 3
    INTEST_BIST = 4
    EXTEST = 5

    @property
    def is_test_mode(self) -> bool:
        return self not in (WrapperMode.FUNCTIONAL, WrapperMode.BYPASS)


class WrapperInstructionRegister:
    """The WIR: holds the current wrapper instruction (mode)."""

    def __init__(self, width_bits: int = 8):
        self.width_bits = width_bits
        self.mode = WrapperMode.FUNCTIONAL

    def encode(self, mode: WrapperMode) -> int:
        return mode.value

    def decode(self, value: int) -> WrapperMode:
        try:
            return WrapperMode(value & ((1 << self.width_bits) - 1))
        except ValueError:
            return WrapperMode.FUNCTIONAL

    def load(self, value: int) -> WrapperMode:
        self.mode = self.decode(value)
        return self.mode


class TestWrapper(Channel):
    """Transaction level model of an IEEE 1500-style test wrapper.

    The wrapper implements the TAM slave interface (it is one of the blocks
    "accessed via the TAM" in the paper's Figure 2) and owns a
    :class:`ConfigurableRegister` that sits on the configuration scan bus and
    feeds its WIR (Figure 3).
    """

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 description: CoreTestDescription, core=None,
                 wir_width: int = 8,
                 tracer: Optional[TransactionTracer] = None,
                 misr_width: int = 32,
                 parallel_width_bits: int = 0):
        super().__init__(parent, name)
        if parallel_width_bits < 0:
            raise ValueError("parallel port width cannot be negative")
        self.description = description
        self.core = core
        #: Width of the wrapper parallel port (WPI/WPO) towards the TAM in
        #: bits; 0 means one lane per scan chain (unconstrained, the IEEE 1500
        #: maximum-parallelism assumption the model used before the port
        #: became configurable).
        self.parallel_width_bits = parallel_width_bits
        self.tracer = tracer
        self.wir = WrapperInstructionRegister(wir_width)
        #: Register placed on the configuration scan bus; updating it loads
        #: the WIR and thereby switches the wrapper mode.
        self.wir_register = ConfigurableRegister(
            name=f"{name}.wir", width_bits=wir_width,
            on_update=self._on_wir_update,
        )
        self.misr = MISR(misr_width, seed=0)
        #: Statistics accumulated during test execution.
        self.patterns_applied = 0
        self.bist_patterns_applied = 0
        self.external_patterns_applied = 0
        self.stimulus_bits_received = 0
        self.response_bits_produced = 0
        self.functional_accesses = 0
        self.mode_errors = 0

    # -- mode handling -------------------------------------------------------
    def _on_wir_update(self, value: int) -> None:
        self.wir.load(value)

    @property
    def mode(self) -> WrapperMode:
        return self.wir.mode

    def set_mode(self, mode: WrapperMode) -> None:
        """Directly set the wrapper mode (shortcut used by tests/examples;
        the timed path goes through the configuration scan bus)."""
        self.wir.mode = mode
        self.wir_register.value = self.wir.encode(mode)

    # -- timing parameters ------------------------------------------------------
    def shift_cycles_per_pattern(self, compressed: bool = False) -> int:
        """Scan shift + capture cycles for one pattern in the current setup."""
        return self.description.shift_cycles_per_pattern(compressed=compressed)

    @property
    def scan_lanes(self) -> int:
        """Scan chains the parallel port can feed concurrently.  Feeds the
        shift-time computation below, so the property and the timing it
        describes cannot drift apart."""
        chains = self.description.chain_count
        if self.parallel_width_bits <= 0:
            return chains
        return min(chains, self.parallel_width_bits)

    def external_shift_cycles_per_pattern(self, compressed: bool = False,
                                          capture_cycles: int = 1) -> int:
        """Shift + capture cycles per externally applied pattern.

        Unlike BIST (which shifts through the core-internal chains and never
        touches the wrapper ports), external test feeds the scan chains
        through the wrapper parallel port; a port narrower than the chain
        count concatenates whole chains per lane and stretches the shift
        accordingly (see
        :meth:`~repro.dft.ctl.CoreTestDescription.external_shift_cycles_per_pattern`).
        Compressed test is unaffected: the port only carries the (small)
        compressed volume and the decompressor drives the internal chains
        directly.
        """
        if compressed and self.description.internal_chain_count:
            return self.description.shift_cycles_per_pattern(
                compressed=True, capture_cycles=capture_cycles)
        return self.description.external_shift_cycles_per_pattern(
            lanes=self.scan_lanes, capture_cycles=capture_cycles)

    def stimulus_bits_per_pattern(self) -> int:
        return self.description.stimulus_bits_per_pattern()

    def response_bits_per_pattern(self) -> int:
        return self.description.response_bits_per_pattern()

    # -- TAM slave interface --------------------------------------------------------
    def tam_access(self, payload: TamPayload) -> TamPayload:
        """Handle a transaction delivered by the TAM.

        In functional and bypass modes the transaction is forwarded to the
        wrapped core; in the test modes the payload is interpreted as test
        stimuli/responses and accounted accordingly.
        """
        if self.mode in (WrapperMode.FUNCTIONAL, WrapperMode.BYPASS):
            self.functional_accesses += 1
            if self.core is not None and hasattr(self.core, "functional_access"):
                return self.core.functional_access(payload)
            return payload.complete(TamResponse.OK)

        if self.mode in (WrapperMode.INTEST_SCAN, WrapperMode.INTEST_COMPRESSED,
                         WrapperMode.EXTEST):
            patterns = int(payload.attributes.get("patterns", 1))
            if payload.command in (TamCommand.WRITE, TamCommand.WRITE_READ):
                self.apply_external_patterns(patterns, payload.data_bits)
            if payload.command in (TamCommand.READ, TamCommand.WRITE_READ):
                payload.response_data = self.signature
            return payload.complete(TamResponse.OK)

        if self.mode is WrapperMode.INTEST_BIST:
            # In BIST mode the TAM only carries control/status accesses.
            if payload.command is TamCommand.READ:
                payload.response_data = {
                    "patterns_applied": self.bist_patterns_applied,
                    "signature": self.signature,
                }
            return payload.complete(TamResponse.OK)

        self.mode_errors += 1
        return payload.complete(TamResponse.MODE_ERROR)

    # -- convenience TAM_IF view (untimed) ---------------------------------------------
    def write(self, payload: TamPayload) -> TamPayload:
        """Untimed TAM_IF ``write`` directly on the wrapper (Figure 2 view)."""
        payload.command = TamCommand.WRITE
        return self.tam_access(payload)

    def read(self, payload: TamPayload) -> TamPayload:
        """Untimed TAM_IF ``read`` directly on the wrapper."""
        payload.command = TamCommand.READ
        return self.tam_access(payload)

    def write_read(self, payload: TamPayload) -> TamPayload:
        """Untimed TAM_IF ``write_read`` directly on the wrapper."""
        payload.command = TamCommand.WRITE_READ
        return self.tam_access(payload)

    # -- test bookkeeping ---------------------------------------------------------------
    def apply_external_patterns(self, count: int, stimulus_bits: Optional[int] = None) -> None:
        """Account *count* externally supplied scan patterns."""
        if count <= 0:
            return
        bits = (stimulus_bits if stimulus_bits is not None
                else count * self.stimulus_bits_per_pattern())
        self.patterns_applied += count
        self.external_patterns_applied += count
        self.stimulus_bits_received += bits
        self.response_bits_produced += count * self.response_bits_per_pattern()
        # Fold a deterministic token per pattern into the signature so that
        # repeated runs produce identical, checkable signatures.
        for index in range(count):
            self.misr.compact(self.external_patterns_applied - count + index + 1)

    def apply_bist_patterns(self, count: int) -> None:
        """Account *count* patterns generated by the core-internal LFSR."""
        if count <= 0:
            return
        if not self.description.has_logic_bist:
            raise ValueError(
                f"core {self.description.core_name!r} has no logic BIST engine"
            )
        self.patterns_applied += count
        self.bist_patterns_applied += count
        self.response_bits_produced += count * self.response_bits_per_pattern()
        self.misr.compact_sequence(
            self.bist_patterns_applied - count + index + 1 for index in range(count)
        )

    @property
    def signature(self) -> int:
        """Current MISR signature of the wrapper's compactor."""
        return self.misr.signature

    # -- validation against the (synthetic) netlist -----------------------------------------
    def validate_patterns(self, pattern_count: int = 256, seed: int = 7,
                          fault_sample: Optional[int] = 200) -> float:
        """Fault-simulate LFSR patterns on the validation netlist.

        Returns the achieved stuck-at fault coverage.  This reproduces the
        *validation* aspect of the paper: the same wrapper model that provides
        timing for exploration can be hooked to a structural core model to
        check that the test actually detects faults.
        """
        description = self.description
        if description.validation_netlist is None:
            raise ValueError(
                f"core {description.core_name!r} has no validation netlist attached"
            )
        netlist = description.validation_netlist
        scan_config = description.validation_scan_config
        lfsr_width = 32
        lfsr = LFSR(lfsr_width, seed=seed)
        flip_flop_names = sorted(netlist.flip_flops)
        input_names = list(netlist.primary_inputs)
        patterns = []
        for _ in range(pattern_count):
            ff_values = {}
            for offset in range(0, len(flip_flop_names), lfsr_width):
                word = lfsr.next_word(lfsr_width)
                for bit, name in enumerate(flip_flop_names[offset:offset + lfsr_width]):
                    ff_values[name] = (word >> bit) & 1
            pi_word = lfsr.next_word(len(input_names))
            pi_values = {name: (pi_word >> bit) & 1
                         for bit, name in enumerate(input_names)}
            patterns.append(ScanPattern(ff_values, pi_values))
        faults = enumerate_faults(netlist, sample=fault_sample, seed=seed)
        simulator = FaultSimulator(netlist, scan_config)
        return simulator.fault_coverage(patterns, faults)

    def reset_statistics(self) -> None:
        self.patterns_applied = 0
        self.bist_patterns_applied = 0
        self.external_patterns_applied = 0
        self.stimulus_bits_received = 0
        self.response_bits_produced = 0
        self.functional_accesses = 0
        self.mode_errors = 0
        self.misr = MISR(self.misr.width, seed=0)

    def __repr__(self):
        return (
            f"TestWrapper({self.name!r}, core={self.description.core_name!r}, "
            f"mode={self.mode.name}, patterns={self.patterns_applied})"
        )
