"""Core test descriptions (CTL, IEEE Std 1450.6 subset) and wrapper generation.

The paper states that, given the CTL description of a core's interface
(functional, system and test inputs/outputs), a test wrapper TLM can be
generated automatically.  :class:`CoreTestDescription` is the Python
equivalent of that description and :func:`generate_wrapper` performs the
automatic generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.rtl.generate import SyntheticCoreSpec, generate_netlist
from repro.rtl.netlist import Netlist
from repro.rtl.scan import ScanConfiguration, insert_scan


@dataclass
class CoreTestDescription:
    """Test-relevant description of a core, as a test wrapper sees it.

    Two levels of detail coexist:

    * the *architectural* scan configuration (:attr:`scan_config`) carries the
      pattern volumes and shift lengths that determine test time and TAM
      utilization (e.g. "32 scan chains, 46 400 scan cells" for the paper's
      processor core);
    * an optional *validation netlist* (:attr:`validation_netlist`) is a small
      synthetic gate-level model on which generated patterns can actually be
      fault-simulated, standing in for the real IP netlist that the paper's
      authors had and we do not.
    """

    core_name: str
    scan_config: ScanConfiguration
    functional_input_bits: int = 32
    functional_output_bits: int = 32
    #: Does the core contain its own LFSR/MISR pair (logic BIST)?
    has_logic_bist: bool = False
    #: Number of core-internal scan chains available behind a decompressor.
    #: Test compression splits the scan cells into many short internal chains,
    #: which shortens the per-pattern shift time.
    internal_chain_count: Optional[int] = None
    #: Relative power weight while the core is under test (arbitrary units).
    test_power: float = 1.0
    #: Relative power weight in functional/idle mode.
    idle_power: float = 0.1
    validation_netlist: Optional[Netlist] = None
    validation_scan_config: Optional[ScanConfiguration] = None
    notes: List[str] = field(default_factory=list)

    # -- volumes -------------------------------------------------------------
    @property
    def scan_cells(self) -> int:
        return self.scan_config.total_cells

    @property
    def chain_count(self) -> int:
        return self.scan_config.chain_count

    def stimulus_bits_per_pattern(self) -> int:
        """Scan stimulus volume of one test pattern."""
        return self.scan_config.total_cells

    def response_bits_per_pattern(self) -> int:
        """Scan response volume of one test pattern."""
        return self.scan_config.total_cells

    # -- timing ----------------------------------------------------------------
    def shift_cycles_per_pattern(self, compressed: bool = False,
                                 capture_cycles: int = 1) -> int:
        """Scan-shift plus capture cycles for one pattern.

        In compressed mode the decompressor drives the (more numerous, hence
        shorter) internal chains, so the shift length drops accordingly.
        """
        if compressed and self.internal_chain_count:
            chain_length = math.ceil(self.scan_cells / self.internal_chain_count)
        else:
            chain_length = self.scan_config.max_chain_length
        return chain_length + capture_cycles

    def external_shift_cycles_per_pattern(self, lanes: int = 0,
                                          capture_cycles: int = 1) -> int:
        """Shift + capture cycles per externally applied pattern when the
        wrapper parallel port feeds at most *lanes* scan chains concurrently
        (0: one lane per chain, the unconstrained case).

        Lanes concatenate *whole* chains, so a narrower port multiplies the
        shift length by the number of chains the fullest lane carries —
        ``ceil(chain_count / lanes)`` chains of up to ``max_chain_length``
        cells each.  Coarse but monotone: narrowing the port never shortens
        the test, and widths beyond the chain count change nothing.  The
        single source of truth for this model; both the wrapper TLM and the
        coarse estimator call it.
        """
        if lanes <= 0 or lanes >= self.chain_count:
            return self.shift_cycles_per_pattern(
                compressed=False, capture_cycles=capture_cycles)
        chains_per_lane = math.ceil(self.chain_count / lanes)
        return (chains_per_lane * self.scan_config.max_chain_length
                + capture_cycles)

    def bist_cycles(self, pattern_count: int, capture_cycles: int = 1) -> int:
        """Cycles for *pattern_count* BIST patterns applied by an on-core LFSR."""
        if not self.has_logic_bist:
            raise ValueError(f"core {self.core_name!r} has no logic BIST")
        return pattern_count * self.shift_cycles_per_pattern(
            compressed=False, capture_cycles=capture_cycles
        )

    # -- construction helpers ------------------------------------------------------
    @classmethod
    def describe(cls, core_name: str, chain_count: int, scan_cells: int,
                 **kwargs) -> "CoreTestDescription":
        """Create a description from chain count and total scan cells."""
        scan_config = ScanConfiguration.describe(core_name, chain_count, scan_cells)
        return cls(core_name=core_name, scan_config=scan_config, **kwargs)

    def attach_synthetic_validation(self, flip_flops: int = 96, gates: int = 480,
                                    seed: int = 1,
                                    chain_count: Optional[int] = None) -> "CoreTestDescription":
        """Generate and attach a small synthetic netlist for pattern validation."""
        spec = SyntheticCoreSpec(
            name=f"{self.core_name}_validation",
            flip_flops=flip_flops,
            gates=gates,
            seed=seed,
        )
        netlist = generate_netlist(spec)
        chains = chain_count or min(self.chain_count, flip_flops)
        self.validation_netlist = netlist
        self.validation_scan_config = insert_scan(netlist, chains,
                                                  core_name=spec.name)
        self.notes.append(
            f"validation netlist: {flip_flops} flip-flops, {gates} gates, "
            f"{chains} chains (synthetic stand-in for the real IP netlist)"
        )
        return self


def generate_wrapper(parent, description: CoreTestDescription, core=None,
                     config_bus=None, wir_width: int = 8,
                     tracer=None, parallel_width_bits: int = 0):
    """Automatically generate a test wrapper TLM from a CTL description.

    Mirrors the paper's statement that a wrapper TLM can be generated from the
    CTL (IEEE 1450.6) description of a core.  The returned wrapper is already
    registered on *config_bus* when one is given.  *parallel_width_bits*
    bounds the wrapper parallel port (0: one lane per scan chain).
    """
    from repro.dft.wrapper import TestWrapper

    wrapper = TestWrapper(
        parent,
        f"{description.core_name}_wrapper",
        description=description,
        core=core,
        wir_width=wir_width,
        tracer=tracer,
        parallel_width_bits=parallel_width_bits,
    )
    if config_bus is not None:
        config_bus.register(wrapper.wir_register)
    return wrapper
