"""On-chip test controller TLM (paper, Section III-E).

The test controller implements the BIST control functions: it sequences logic
BIST sessions of wrapped cores and array BIST of embedded memories, reports
status to the ATE over the TAM and is itself configured through the
configuration scan bus.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Union

from repro.kernel.channel import Channel
from repro.kernel.event import Timeout
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.memory.march import MarchTest, run_march_test, run_pattern_test
from repro.dft.config_bus import ConfigurableRegister
from repro.dft.monitor import ActivityLog
from repro.dft.payload import TamCommand, TamPayload, TamResponse
from repro.dft.tam import TamChannel
from repro.dft.wrapper import TestWrapper


class TestController(Channel):
    """Sequences on-chip BIST sessions and exposes status over the TAM."""

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 tam: TamChannel, activity_log: Optional[ActivityLog] = None,
                 status_poll_bits: int = 32):
        super().__init__(parent, name)
        self.tam = tam
        self.activity_log = activity_log if activity_log is not None else ActivityLog()
        self.status_poll_bits = status_poll_bits
        self.config_register = ConfigurableRegister(
            name=f"{name}.config", width_bits=8,
            on_update=self._on_config_update,
        )
        self.enabled = False
        #: Per-session status dictionaries, keyed by session name.
        self.sessions: Dict[str, Dict[str, object]] = {}

    def _on_config_update(self, value: int) -> None:
        self.enabled = bool(value & 0x1)

    def enable(self) -> None:
        """Shortcut to enable the controller without the configuration bus."""
        self.enabled = True
        self.config_register.value = 1

    # -- TAM slave interface (command/status port) ----------------------------------
    def tam_access(self, payload: TamPayload) -> TamPayload:
        if payload.command is TamCommand.READ:
            session = payload.attributes.get("session")
            if session is None:
                payload.response_data = {name: dict(status)
                                         for name, status in self.sessions.items()}
            else:
                payload.response_data = dict(self.sessions.get(session, {}))
        return payload.complete(TamResponse.OK)

    # -- logic BIST -----------------------------------------------------------------
    def run_logic_bist(self, session: str, wrapper: TestWrapper,
                       pattern_count: int, chunks: int = 50,
                       power: float = 1.0):
        """Run a logic BIST session on *wrapper* (blocking; ``yield from``).

        The core-internal LFSR applies the patterns; the TAM is not used for
        pattern data.  The session advances in chunks so that progress is
        visible to ATE status polls and to the power monitor.
        """
        if not self.enabled:
            raise RuntimeError(f"test controller {self.name!r} is not enabled")
        if pattern_count <= 0:
            raise ValueError("pattern_count must be positive")
        clock = self.tam.clock
        cycles_per_pattern = wrapper.shift_cycles_per_pattern(compressed=False)
        status = {"kind": "logic_bist", "core": wrapper.description.core_name,
                  "patterns_total": pattern_count, "patterns_done": 0,
                  "done": False}
        self.sessions[session] = status
        start_time = self.sim.now
        chunk_size = max(1, math.ceil(pattern_count / max(1, chunks)))
        applied = 0
        while applied < pattern_count:
            chunk = min(chunk_size, pattern_count - applied)
            yield Timeout(clock.cycles(chunk * cycles_per_pattern))
            wrapper.apply_bist_patterns(chunk)
            applied += chunk
            status["patterns_done"] = applied
        status["done"] = True
        status["signature"] = wrapper.signature
        status["cycles"] = clock.cycles_between(start_time, self.sim.now)
        # Once-per-session (cold) path: record_fs handles the disabled case
        # and keeps its interval validation.
        self.activity_log.record_fs(wrapper.description.core_name,
                                    "logic_bist", start_time.femtoseconds,
                                    self.sim.now_fs, power)
        return status

    # -- memory array BIST ------------------------------------------------------------
    def run_memory_bist(self, session: str, memory_core, march: MarchTest,
                        pattern_backgrounds: int = 2,
                        cycles_per_operation: float = 1.15,
                        busy_fraction: float = 0.87,
                        chunks: int = 64, power: float = 1.0,
                        validation_stride: int = 257):
        """Run controller-driven array BIST on *memory_core* (blocking).

        The march elements and pattern backgrounds are applied back-to-back;
        each memory operation is a (pipelined) access over the system bus /
        TAM, so a ``busy_fraction`` share of the session occupies the TAM.
        A functional run of the same algorithm with address subsampling
        (*validation_stride*) checks that injected faults are actually caught.
        """
        if not self.enabled:
            raise RuntimeError(f"test controller {self.name!r} is not enabled")
        if not 0.0 <= busy_fraction <= 1.0:
            raise ValueError("busy_fraction must lie in [0, 1]")
        clock = self.tam.clock
        memory = memory_core.array
        words = memory.words
        march_operations = march.operation_count(words)
        pattern_operations = 2 * pattern_backgrounds * words
        total_operations = march_operations + pattern_operations
        total_cycles = round(total_operations * cycles_per_operation)
        status = {"kind": "memory_bist", "core": memory_core.name,
                  "operations_total": total_operations, "operations_done": 0,
                  "done": False, "failures": 0}
        self.sessions[session] = status
        start_time = self.sim.now

        # Functional validation pass on a subsampled address space.
        march_result = run_march_test(memory, march, stride=validation_stride,
                                      max_failures=64)
        pattern_result = run_pattern_test(memory, stride=validation_stride,
                                          max_failures=64)
        status["failures"] = len(march_result.failures) + len(pattern_result.failures)
        status["march_result"] = march_result
        status["pattern_result"] = pattern_result

        chunk_size = max(1, math.ceil(total_operations / max(1, chunks)))
        done_operations = 0
        while done_operations < total_operations:
            chunk = min(chunk_size, total_operations - done_operations)
            chunk_cycles = max(1, round(chunk * cycles_per_operation))
            busy_cycles = max(1, round(chunk_cycles * busy_fraction))
            yield from self.tam.occupy(
                initiator=self.name, busy_cycles=busy_cycles,
                kind="memory_bist", address=getattr(memory_core, "base_address", None),
                data_bits=chunk * memory.word_bits,
                attributes={"session": session, "operations": chunk},
            )
            idle_cycles = chunk_cycles - busy_cycles
            if idle_cycles > 0:
                yield Timeout(clock.cycles(idle_cycles))
            done_operations += chunk
            status["operations_done"] = done_operations
        status["done"] = True
        status["cycles"] = clock.cycles_between(start_time, self.sim.now)
        status["expected_cycles"] = total_cycles
        self.activity_log.record_fs(memory_core.name, "memory_bist",
                                    start_time.femtoseconds, self.sim.now_fs,
                                    power)
        return status

    def __repr__(self):
        return f"TestController({self.name!r}, sessions={len(self.sessions)})"
