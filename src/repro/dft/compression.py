"""Decompressor and compactor TLMs (paper, Section III-D).

Both are interface adaptors between the TAM and a core wrapper: the
decompressor expands compressed stimuli arriving from the TAM into scan data
for the wrapper, the compactor reduces the wrapper's responses (down to a
signature in the extreme case) before they travel back over the TAM.  Both are
configurable through the configuration scan bus and support a bypass mode,
and both support static as well as variable compression ratios.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Union

from repro.kernel.channel import Channel
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.rtl.lfsr import MISR
from repro.dft.config_bus import ConfigurableRegister
from repro.dft.payload import TamCommand, TamPayload, TamResponse


class Decompressor(Channel):
    """Expands compressed test stimuli for a core wrapper.

    The adaptor is volume-oriented: it converts between compressed bits on its
    TAM side and expanded bits on its wrapper side and keeps count of both.
    A *variable* ratio can be modeled by passing ``ratio_for_pattern``, a
    callable mapping the pattern index to that pattern's compression ratio.
    """

    #: Configuration register encodings.
    MODE_BYPASS = 0
    MODE_ACTIVE = 1

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 compression_ratio: float, target_wrapper=None,
                 internal_chain_count: Optional[int] = None,
                 ratio_for_pattern: Optional[Callable[[int], float]] = None):
        super().__init__(parent, name)
        if compression_ratio < 1:
            raise ValueError("compression ratio must be >= 1")
        self.compression_ratio = compression_ratio
        self.target_wrapper = target_wrapper
        self.internal_chain_count = internal_chain_count
        self.ratio_for_pattern = ratio_for_pattern
        self.config_register = ConfigurableRegister(
            name=f"{name}.config", width_bits=4,
            on_update=self._on_config_update,
        )
        self.bypass = True
        self.compressed_bits_in = 0
        self.expanded_bits_out = 0
        self.patterns_expanded = 0

    def _on_config_update(self, value: int) -> None:
        self.bypass = (value == self.MODE_BYPASS)

    def activate(self) -> None:
        """Shortcut to leave bypass mode without the configuration scan bus."""
        self.bypass = False
        self.config_register.value = self.MODE_ACTIVE

    # -- volume conversion -------------------------------------------------------
    def ratio(self, pattern_index: int = 0) -> float:
        if self.ratio_for_pattern is not None:
            ratio = self.ratio_for_pattern(pattern_index)
            if ratio < 1:
                raise ValueError("variable compression ratio must be >= 1")
            return ratio
        return self.compression_ratio

    def compressed_bits(self, expanded_bits: int, pattern_index: int = 0) -> int:
        """Compressed volume corresponding to *expanded_bits* of stimuli."""
        if self.bypass:
            return expanded_bits
        return max(1, math.ceil(expanded_bits / self.ratio(pattern_index)))

    def expand(self, compressed_bits: int, patterns: int = 1,
               pattern_index: int = 0) -> int:
        """Account the expansion of *compressed_bits*; returns expanded bits."""
        if compressed_bits < 0:
            raise ValueError("compressed_bits cannot be negative")
        if self.bypass:
            expanded = compressed_bits
        else:
            expanded = round(compressed_bits * self.ratio(pattern_index))
        self.compressed_bits_in += compressed_bits
        self.expanded_bits_out += expanded
        self.patterns_expanded += patterns
        if self.target_wrapper is not None and patterns > 0:
            self.target_wrapper.apply_external_patterns(patterns, expanded)
        return expanded

    # -- TAM slave interface ----------------------------------------------------------
    def tam_access(self, payload: TamPayload) -> TamPayload:
        """Compressed stimuli written over the TAM are expanded on the fly."""
        if payload.command in (TamCommand.WRITE, TamCommand.WRITE_READ):
            patterns = int(payload.attributes.get("patterns", 1))
            expanded = self.expand(payload.data_bits, patterns=patterns)
            payload.attributes["expanded_bits"] = expanded
        return payload.complete(TamResponse.OK)

    def __repr__(self):
        mode = "bypass" if self.bypass else f"{self.compression_ratio:g}x"
        return f"Decompressor({self.name!r}, {mode})"


class Compactor(Channel):
    """Compacts core responses before they travel back over the TAM."""

    MODE_BYPASS = 0
    MODE_ACTIVE = 1

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 compaction_ratio: float, signature_width: int = 32):
        super().__init__(parent, name)
        if compaction_ratio < 1:
            raise ValueError("compaction ratio must be >= 1")
        self.compaction_ratio = compaction_ratio
        self.misr = MISR(signature_width, seed=0)
        self.config_register = ConfigurableRegister(
            name=f"{name}.config", width_bits=4,
            on_update=self._on_config_update,
        )
        self.bypass = True
        self.response_bits_in = 0
        self.compacted_bits_out = 0

    def _on_config_update(self, value: int) -> None:
        self.bypass = (value == self.MODE_BYPASS)

    def activate(self) -> None:
        self.bypass = False
        self.config_register.value = self.MODE_ACTIVE

    def compact(self, response_bits: int, token: Optional[int] = None) -> int:
        """Account compaction of *response_bits*; returns the outgoing volume."""
        if response_bits < 0:
            raise ValueError("response_bits cannot be negative")
        if self.bypass:
            outgoing = response_bits
        else:
            outgoing = max(1, math.ceil(response_bits / self.compaction_ratio))
        self.response_bits_in += response_bits
        self.compacted_bits_out += outgoing
        self.misr.compact(token if token is not None else response_bits)
        return outgoing

    @property
    def signature(self) -> int:
        return self.misr.signature

    def tam_access(self, payload: TamPayload) -> TamPayload:
        """A TAM read returns the current signature."""
        if payload.command in (TamCommand.READ, TamCommand.WRITE_READ):
            payload.response_data = self.signature
        return payload.complete(TamResponse.OK)

    def __repr__(self):
        mode = "bypass" if self.bypass else f"{self.compaction_ratio:g}x"
        return f"Compactor({self.name!r}, {mode})"
