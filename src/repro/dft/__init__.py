"""Test-infrastructure transaction level models.

This package is the reproduction of the paper's contribution (Sections II and
III): transaction level models of the structural building blocks of a
system-on-chip manufacturing-test architecture.

* :mod:`repro.dft.payload` -- the test transaction payload carried by TAMs
* :mod:`repro.dft.tam` -- the TAM interface (``read``/``write``/``write_read``)
  and channel models (bus TAM, dedicated TAM, ATE link)
* :mod:`repro.dft.config_bus` -- the configuration scan bus / ring
* :mod:`repro.dft.wrapper` -- IEEE 1500-style test wrappers with a WIR
* :mod:`repro.dft.pattern_source` -- LFSR, deterministic and compressed
  pattern sources
* :mod:`repro.dft.compression` -- decompressor/compactor interface adaptors
* :mod:`repro.dft.ebi` -- the external bus interface to the ATE
* :mod:`repro.dft.controller` -- the on-chip test controller
* :mod:`repro.dft.ate` -- the ATE model and virtual-ATE test programs
* :mod:`repro.dft.ctl` -- CTL-like core test descriptions and automatic
  wrapper generation
* :mod:`repro.dft.monitor` -- TAM-utilization and power monitors
"""

from repro.dft.payload import TamCommand, TamPayload, TamResponse
from repro.dft.tam import AteLink, TamChannel, TamInterface, TamSlaveInterface
from repro.dft.config_bus import ConfigurationScanBus, ConfigurableRegister
from repro.dft.wrapper import TestWrapper, WrapperInstructionRegister, WrapperMode
from repro.dft.pattern_source import (
    CompressedPatternSource,
    DeterministicPatternSource,
    LfsrPatternSource,
    PatternSource,
)
from repro.dft.compression import Compactor, Decompressor
from repro.dft.ebi import ExternalBusInterface, ExternalTestTiming
from repro.dft.controller import TestController
from repro.dft.ate import (
    AutomatedTestEquipment,
    ScheduleExecutionResult,
    StepKind,
    TaskExecutionResult,
    TestArchitecture,
    TestProgram,
    TestProgramStep,
)
from repro.dft.ctl import CoreTestDescription, generate_wrapper
from repro.dft.monitor import ActivityLog, PowerMonitor, TamUtilizationMonitor

__all__ = [
    "ActivityLog",
    "AteLink",
    "AutomatedTestEquipment",
    "Compactor",
    "CompressedPatternSource",
    "ConfigurableRegister",
    "ConfigurationScanBus",
    "CoreTestDescription",
    "Decompressor",
    "DeterministicPatternSource",
    "ExternalBusInterface",
    "ExternalTestTiming",
    "LfsrPatternSource",
    "PatternSource",
    "PowerMonitor",
    "ScheduleExecutionResult",
    "StepKind",
    "TamChannel",
    "TamCommand",
    "TamInterface",
    "TamPayload",
    "TamResponse",
    "TamSlaveInterface",
    "TamUtilizationMonitor",
    "TaskExecutionResult",
    "TestArchitecture",
    "TestController",
    "TestProgram",
    "TestProgramStep",
    "TestWrapper",
    "WrapperInstructionRegister",
    "WrapperMode",
    "generate_wrapper",
]
