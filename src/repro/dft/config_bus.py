"""The configuration scan bus / ring.

Test wrappers, decompressors and the external bus interface are configured
through a dedicated serial scan ring (paper, Figures 3 and 4).  Writing one
instruction requires shifting through the whole ring, so the configuration
cost grows with the number of connected blocks — an effect the TLM captures
because it matters when schedules switch test modes frequently.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Union

from repro.kernel.channel import Channel
from repro.kernel.clock import Clock
from repro.kernel.event import Timeout
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.kernel.sync import Mutex
from repro.kernel.tracing import TransactionTracer


class ConfigurableRegister:
    """A register sitting on the configuration scan ring (e.g. a WIR)."""

    def __init__(self, name: str, width_bits: int,
                 on_update: Optional[Callable[[int], None]] = None,
                 reset_value: int = 0):
        if width_bits <= 0:
            raise ValueError("register width must be positive")
        self.name = name
        self.width_bits = width_bits
        self.value = reset_value & self.mask
        self._on_update = on_update

    @property
    def mask(self) -> int:
        return (1 << self.width_bits) - 1

    def update(self, value: int) -> None:
        self.value = value & self.mask
        if self._on_update is not None:
            self._on_update(self.value)

    def __repr__(self):
        return f"ConfigurableRegister({self.name!r}, width={self.width_bits}, value={self.value:#x})"


#: Default capture/update protocol cycles per configuration, paid once per
#: shift regardless of the ring's serial width.
DEFAULT_PROTOCOL_OVERHEAD_CYCLES = 4


class ConfigurationScanBus(Channel):
    """Serial configuration scan ring connecting all configurable registers."""

    def __init__(self, parent: Union[Simulator, Module], name: str, clock: Clock,
                 protocol_overhead_cycles: int = DEFAULT_PROTOCOL_OVERHEAD_CYCLES,
                 tracer: Optional[TransactionTracer] = None,
                 serial_width_bits: int = 1):
        super().__init__(parent, name)
        if serial_width_bits < 1:
            raise ValueError("serial width must be at least one bit")
        self.clock = clock
        self.protocol_overhead_cycles = protocol_overhead_cycles
        #: Bits shifted through the ring per cycle (wrapper serial port
        #: width).  The classic IEEE 1500 WSI/WSO ring is 1 bit wide; wider
        #: serial ports shift a full configuration proportionally faster.
        self.serial_width_bits = serial_width_bits
        self.tracer = tracer if tracer is not None else TransactionTracer()
        self._registers: Dict[str, ConfigurableRegister] = {}
        self._order: List[str] = []
        self._mutex = Mutex(self.sim, name=f"{self.name}.arbiter")
        self.configuration_count = 0
        self.busy_cycles_total = 0

    # -- ring construction ---------------------------------------------------
    def register(self, config_register: ConfigurableRegister) -> None:
        """Insert *config_register* into the scan ring."""
        if config_register.name in self._registers:
            raise ValueError(
                f"register {config_register.name!r} is already on the ring"
            )
        self._registers[config_register.name] = config_register
        self._order.append(config_register.name)

    @property
    def ring_length_bits(self) -> int:
        """Total shift length of the ring (sum of all register widths)."""
        return sum(reg.width_bits for reg in self._registers.values())

    @property
    def registers(self) -> List[ConfigurableRegister]:
        return [self._registers[name] for name in self._order]

    def lookup(self, name: str) -> ConfigurableRegister:
        try:
            return self._registers[name]
        except KeyError:
            raise KeyError(f"no register named {name!r} on the configuration ring")

    # -- timed configuration --------------------------------------------------
    def configuration_cycles(self) -> int:
        """Cycles to shift one full configuration through the ring."""
        shift_cycles = math.ceil(self.ring_length_bits / self.serial_width_bits)
        return shift_cycles + self.protocol_overhead_cycles

    def configure(self, target_name: str, value: int, initiator: str = ""):
        """Shift a new value into *target_name* (blocking; ``yield from``).

        Shifting is serial through the entire ring, so the cost is independent
        of which register is targeted; all other registers are rewritten with
        their current values.
        """
        register = self.lookup(target_name)
        cycles = self.configuration_cycles()
        yield from self._mutex.acquire()
        start_fs = self.sim.now_fs
        try:
            yield Timeout(self.clock.cycles(cycles))
        finally:
            self._mutex.release()
        register.update(value)
        self.configuration_count += 1
        self.busy_cycles_total += cycles
        tracer = self.tracer
        if tracer.enabled:
            tracer.record_fs(
                self.name, "configure", start_fs, self.sim.now_fs,
                initiator=initiator, data_bits=self.ring_length_bits,
                attributes={"target": target_name, "value": value,
                            "busy_cycles": cycles},
            )
        return register.value

    def configure_many(self, assignments: Dict[str, int], initiator: str = ""):
        """Configure several registers with a single shift through the ring."""
        for name in assignments:
            self.lookup(name)
        cycles = self.configuration_cycles()
        yield from self._mutex.acquire()
        start_fs = self.sim.now_fs
        try:
            yield Timeout(self.clock.cycles(cycles))
        finally:
            self._mutex.release()
        for name, value in assignments.items():
            self._registers[name].update(value)
        self.configuration_count += 1
        self.busy_cycles_total += cycles
        tracer = self.tracer
        if tracer.enabled:
            tracer.record_fs(
                self.name, "configure_many", start_fs,
                self.sim.now_fs, initiator=initiator,
                data_bits=self.ring_length_bits,
                attributes={"targets": sorted(assignments),
                            "busy_cycles": cycles},
            )

    def __repr__(self):
        return (
            f"ConfigurationScanBus({self.name!r}, registers={len(self._registers)}, "
            f"ring_bits={self.ring_length_bits})"
        )
