"""External bus interface (EBI) to the automated test equipment.

For external test, the pattern source is the ATE; the EBI translates the ATE
protocol into the TAM protocol (paper, Section III-C/E).  Besides the plain
per-transaction adaptation, the EBI implements the pipelined streaming of
pattern bursts used by the approximately-timed test flows: while the ATE link
delivers the next burst, the previous burst travels over the TAM and shifts
into the core, so the per-burst period is governed by the slowest of the three
stages — exactly the behaviour that determines test length and TAM
utilization in the case study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

from repro.kernel.channel import Channel
from repro.kernel.event import AllOf
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.dft.config_bus import ConfigurableRegister
from repro.dft.payload import TamPayload
from repro.dft.tam import AteLink, TamChannel


@dataclass
class ExternalTestTiming:
    """Per-pattern data volumes and shift time of an external scan test."""

    #: Stimulus bits per pattern moved over the ATE link (compressed volume
    #: when a compressed pattern set is streamed).
    ate_bits_per_pattern: int
    #: Response bits per pattern returned to the ATE (signature-sized when a
    #: compactor is active).
    ate_response_bits_per_pattern: int
    #: Bits per pattern that occupy the on-chip TAM (compressed volume plus
    #: expanded volume when the decompressor re-injects data onto the TAM).
    tam_bits_per_pattern: int
    #: Scan shift + capture cycles per pattern inside the core.
    shift_cycles_per_pattern: int

    def __post_init__(self):
        for name in ("ate_bits_per_pattern", "ate_response_bits_per_pattern",
                     "tam_bits_per_pattern", "shift_cycles_per_pattern"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


class ExternalBusInterface(Channel):
    """Interface adaptor between the ATE link and the on-chip TAM."""

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 ate_link: AteLink, tam: TamChannel,
                 buffer_patterns: int = 64):
        super().__init__(parent, name)
        self.ate_link = ate_link
        self.tam = tam
        self.buffer_patterns = buffer_patterns
        self.config_register = ConfigurableRegister(
            name=f"{name}.config", width_bits=8,
            on_update=self._on_config_update,
        )
        self.enabled = False
        self.patterns_streamed = 0
        self.bursts_streamed = 0

    def _on_config_update(self, value: int) -> None:
        self.enabled = bool(value & 0x1)

    def enable(self) -> None:
        """Shortcut to enable the EBI without the configuration scan bus."""
        self.enabled = True
        self.config_register.value = 1

    # -- plain protocol translation ------------------------------------------------
    def forward(self, payload: TamPayload):
        """Translate a single ATE access into a TAM transaction (blocking)."""
        yield from self.ate_link.transfer(
            initiator=payload.initiator or self.name,
            stimulus_bits=payload.data_bits,
            response_bits=payload.response_bits,
            kind=f"ate_{payload.command.value}",
        )
        result = yield from self.tam.transport(payload)
        return result

    # -- pipelined pattern streaming --------------------------------------------------
    def stream_patterns(self, initiator: str, address: int, patterns: int,
                        timing: ExternalTestTiming,
                        wrapper=None, decompressor=None, compactor=None,
                        burst_patterns: Optional[int] = None):
        """Stream *patterns* scan patterns to the wrapper at *address*.

        Blocking call (``yield from``).  Per burst, three stages overlap:

        * the ATE link delivers the burst's stimuli (and receives responses),
        * the TAM carries the burst's on-chip data volume,
        * the target core shifts and captures the burst's patterns.

        The burst period is therefore the maximum of the three stage times,
        and each stage occupies (and is accounted on) its own resource, so the
        recorded transaction streams directly yield ATE-channel and TAM
        utilization.
        """
        if patterns <= 0:
            raise ValueError("pattern count must be positive")
        if not self.enabled:
            raise RuntimeError(
                f"EBI {self.name!r} must be enabled (configured) before streaming"
            )
        burst_size = burst_patterns or self.buffer_patterns
        clock = self.tam.clock
        remaining = patterns
        pattern_index = 0
        stats = {
            "patterns": 0,
            "bursts": 0,
            "ate_cycles": 0,
            "tam_busy_cycles": 0,
            "shift_cycles": 0,
        }
        while remaining > 0:
            burst = min(burst_size, remaining)
            ate_bits = burst * timing.ate_bits_per_pattern
            ate_response_bits = burst * timing.ate_response_bits_per_pattern
            tam_bits = burst * timing.tam_bits_per_pattern
            shift_cycles = burst * timing.shift_cycles_per_pattern
            tam_cycles = (self.tam.transfer_cycles(tam_bits)
                          + self.tam.arbitration_overhead_cycles)

            waits = []
            ate_process = self.sim.spawn(
                self.ate_link.transfer(
                    initiator=initiator, stimulus_bits=ate_bits,
                    response_bits=ate_response_bits, kind="pattern_burst",
                    attributes={"patterns": burst},
                ),
                name=f"{self.name}.ate_burst",
            )
            waits.append(ate_process.finished)
            tam_process = self.sim.spawn(
                self.tam.occupy(
                    initiator=initiator, busy_cycles=tam_cycles,
                    kind="pattern_burst", address=address, data_bits=tam_bits,
                    attributes={"patterns": burst},
                ),
                name=f"{self.name}.tam_burst",
            )
            waits.append(tam_process.finished)
            shift_done = self.sim.event(f"{self.name}.shift_done")
            shift_done.notify(clock.cycles(shift_cycles))
            waits.append(shift_done)

            yield AllOf(waits)

            if decompressor is not None and not decompressor.bypass:
                decompressor.expand(
                    burst * timing.ate_bits_per_pattern, patterns=burst
                )
            elif wrapper is not None:
                wrapper.apply_external_patterns(burst)
            if compactor is not None:
                compactor.compact(
                    burst * (wrapper.response_bits_per_pattern() if wrapper else 0),
                )

            stats["patterns"] += burst
            stats["bursts"] += 1
            stats["ate_cycles"] += self.ate_link.transfer_cycles(
                ate_bits, ate_response_bits
            )
            stats["tam_busy_cycles"] += tam_cycles
            stats["shift_cycles"] += shift_cycles
            self.patterns_streamed += burst
            self.bursts_streamed += 1
            pattern_index += burst
            remaining -= burst
        return stats

    # -- convenience ---------------------------------------------------------------------
    @staticmethod
    def pattern_transfer_cycles(bits_per_pattern: int, link_width: int) -> int:
        """ATE/TAM cycles to move one pattern over a link of *link_width* bits."""
        if bits_per_pattern <= 0:
            return 0
        return math.ceil(bits_per_pattern / link_width)

    def __repr__(self):
        return f"ExternalBusInterface({self.name!r}, enabled={self.enabled})"
