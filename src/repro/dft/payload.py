"""Transaction payload for test access mechanisms.

The TLM2.0 generic payload models memory-mapped bus transfers; the paper notes
that TAMs need properties beyond those of SoC buses (combined write/read scan
accesses, data volumes expressed in bits rather than bus words, compression
attributes).  :class:`TamPayload` is the test-domain payload used by every TAM
channel and infrastructure block in this package.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class TamCommand(enum.Enum):
    """Commands of the TAM interface (paper, Section III-A)."""

    READ = "read"
    WRITE = "write"
    #: Combined access, e.g. scan chains shifting stimuli in while responses
    #: shift out concurrently.
    WRITE_READ = "write_read"


class TamResponse(enum.Enum):
    """Completion status of a TAM transaction."""

    OK = "ok"
    ADDRESS_ERROR = "address_error"
    MODE_ERROR = "mode_error"
    INCOMPLETE = "incomplete"


@dataclass
class TamPayload:
    """A single TAM transaction.

    The payload is deliberately data-volume oriented: ``data_bits`` carries the
    stimulus volume and ``response_bits`` the response volume, while ``data``
    may optionally carry actual values (used by the functional bus transfers
    and the memory-mapped accesses of the SoC model).
    """

    command: TamCommand
    address: int = 0
    data_bits: int = 0
    response_bits: int = 0
    data: Optional[object] = None
    response_data: Optional[object] = None
    initiator: str = ""
    #: Free-form attributes (compression ratio, pattern index, burst size ...).
    attributes: Dict[str, object] = field(default_factory=dict)
    status: TamResponse = TamResponse.INCOMPLETE

    def __post_init__(self):
        if self.data_bits < 0 or self.response_bits < 0:
            raise ValueError("payload bit counts cannot be negative")
        if self.command is TamCommand.READ and self.response_bits == 0:
            self.response_bits = self.data_bits

    @property
    def total_bits(self) -> int:
        """Bits moved over the TAM by this transaction (both directions)."""
        if self.command is TamCommand.WRITE:
            return self.data_bits
        if self.command is TamCommand.READ:
            return self.response_bits
        return max(self.data_bits, self.response_bits)

    def complete(self, status: TamResponse = TamResponse.OK) -> "TamPayload":
        self.status = status
        return self

    @classmethod
    def write(cls, address: int, data_bits: int, data=None, **attributes) -> "TamPayload":
        return cls(TamCommand.WRITE, address=address, data_bits=data_bits,
                   data=data, attributes=dict(attributes))

    @classmethod
    def read(cls, address: int, response_bits: int, **attributes) -> "TamPayload":
        return cls(TamCommand.READ, address=address, data_bits=0,
                   response_bits=response_bits, attributes=dict(attributes))

    @classmethod
    def write_read(cls, address: int, data_bits: int, response_bits: Optional[int] = None,
                   data=None, **attributes) -> "TamPayload":
        return cls(TamCommand.WRITE_READ, address=address, data_bits=data_bits,
                   response_bits=data_bits if response_bits is None else response_bits,
                   data=data, attributes=dict(attributes))
