"""Pattern source TLMs (paper, Section III-C).

A pattern source supplies test data to a sink via the TAM.  Three kinds are
modeled:

* :class:`LfsrPatternSource` -- pseudo-random patterns from an LFSR (logic
  BIST),
* :class:`DeterministicPatternSource` -- pre-computed deterministic patterns
  (stored in the ATE or on chip),
* :class:`CompressedPatternSource` -- deterministic patterns stored in
  compressed form, to be expanded by a decompressor.

All sources expose the same volume-oriented API used by the timed test flows
(bits per pattern, number of patterns) plus an optional bit-accurate mode used
for validation against the small synthetic netlists.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

from repro.kernel.channel import Channel
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.rtl.lfsr import LFSR
from repro.dft.payload import TamCommand, TamPayload, TamResponse


class PatternSource(Channel):
    """Base class of pattern sources.

    Pattern sources implement the TAM slave interface so that a test
    controller or EBI can fetch pattern data from them through the TAM, as in
    the paper's Figure 2.
    """

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 pattern_count: int, bits_per_pattern: int):
        super().__init__(parent, name)
        if pattern_count <= 0:
            raise ValueError("pattern_count must be positive")
        if bits_per_pattern <= 0:
            raise ValueError("bits_per_pattern must be positive")
        self.pattern_count = pattern_count
        self.bits_per_pattern = bits_per_pattern
        self.patterns_supplied = 0

    # -- volume-oriented API ---------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Total stimulus volume of the full pattern set."""
        return self.pattern_count * self.bits_per_pattern

    @property
    def remaining_patterns(self) -> int:
        return self.pattern_count - self.patterns_supplied

    @property
    def exhausted(self) -> bool:
        return self.patterns_supplied >= self.pattern_count

    def supply(self, count: int) -> int:
        """Account the supply of *count* patterns; returns the granted count."""
        if count <= 0:
            return 0
        granted = min(count, self.remaining_patterns)
        self.patterns_supplied += granted
        return granted

    def reset(self) -> None:
        self.patterns_supplied = 0

    # -- TAM slave interface ---------------------------------------------------------
    def tam_access(self, payload: TamPayload) -> TamPayload:
        """A TAM read fetches pattern data from the source."""
        if payload.command in (TamCommand.READ, TamCommand.WRITE_READ):
            patterns = int(payload.attributes.get("patterns", 1))
            granted = self.supply(patterns)
            payload.response_data = {"patterns": granted,
                                     "bits": granted * self.bits_per_pattern}
            payload.attributes["granted_patterns"] = granted
        return payload.complete(TamResponse.OK)

    def __repr__(self):
        return (
            f"{type(self).__name__}({self.name!r}, patterns={self.pattern_count}, "
            f"bits_per_pattern={self.bits_per_pattern})"
        )


class LfsrPatternSource(PatternSource):
    """Pseudo-random pattern source backed by a real LFSR."""

    def __init__(self, parent, name: str, pattern_count: int,
                 bits_per_pattern: int, lfsr_width: int = 32, seed: int = 1):
        super().__init__(parent, name, pattern_count, bits_per_pattern)
        self.lfsr = LFSR(lfsr_width, seed=seed)

    def next_pattern_bits(self) -> List[int]:
        """Generate the actual bits of the next pattern (validation use)."""
        self.supply(1)
        return self.lfsr.next_pattern(self.bits_per_pattern)

    def pattern_stream(self, count: Optional[int] = None) -> Iterator[List[int]]:
        """Iterate over generated patterns (validation use)."""
        remaining = self.remaining_patterns if count is None else count
        for _ in range(remaining):
            yield self.next_pattern_bits()


class DeterministicPatternSource(PatternSource):
    """Pre-computed deterministic patterns (e.g. ATPG patterns in ATE memory)."""

    def __init__(self, parent, name: str, pattern_count: int,
                 bits_per_pattern: int,
                 patterns: Optional[List[List[int]]] = None):
        super().__init__(parent, name, pattern_count, bits_per_pattern)
        if patterns is not None and len(patterns) != pattern_count:
            raise ValueError("explicit pattern list must match pattern_count")
        self._patterns = patterns

    def pattern_bits(self, index: int) -> List[int]:
        """Return the bits of pattern *index* (validation use).

        When no explicit pattern list was supplied, a reproducible
        pseudo-deterministic pattern derived from the index is returned, which
        stands in for ATPG data we do not have.
        """
        if not 0 <= index < self.pattern_count:
            raise IndexError(f"pattern index {index} out of range")
        if self._patterns is not None:
            return list(self._patterns[index])
        lfsr = LFSR(32, seed=index + 1)
        return lfsr.next_pattern(self.bits_per_pattern)


class CompressedPatternSource(DeterministicPatternSource):
    """Deterministic patterns stored in compressed form.

    ``bits_per_pattern`` still describes the *expanded* stimulus volume;
    :meth:`compressed_bits_per_pattern` gives the volume actually transported
    from the source (over the ATE link and to the decompressor).
    """

    def __init__(self, parent, name: str, pattern_count: int,
                 bits_per_pattern: int, compression_ratio: float,
                 patterns: Optional[List[List[int]]] = None):
        super().__init__(parent, name, pattern_count, bits_per_pattern, patterns)
        if compression_ratio < 1:
            raise ValueError("compression ratio must be >= 1")
        self.compression_ratio = compression_ratio

    def compressed_bits_per_pattern(self) -> int:
        """Stimulus bits per pattern after compression (at least one word)."""
        return max(1, round(self.bits_per_pattern / self.compression_ratio))

    @property
    def total_compressed_bits(self) -> int:
        return self.pattern_count * self.compressed_bits_per_pattern()
