"""Test access mechanism (TAM) channels.

The TAM transfers test stimuli from a source to the core under test and test
responses from the core to a sink (paper, Section III-A).  Its TLM interface
consists of the three methods ``read``, ``write`` and ``write_read``; the
channel model adds the functional aspects the paper lists: bandwidth (bus
width and clock), latency (arbitration overhead), addressing (slave decode)
and arbitration (FIFO-fair exclusive access).

Two channel models are provided:

* :class:`TamChannel` -- a bus-style TAM (also used as the reused system bus
  of the case study and as dedicated test buses),
* :class:`AteLink` -- the channel between the automated test equipment and the
  external bus interface (EBI), typically much narrower than the on-chip TAM.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple, Union

from repro.kernel.channel import Channel
from repro.kernel.clock import Clock
from repro.kernel.event import Timeout
from repro.kernel.interface import Interface
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.kernel.sync import Mutex
from repro.kernel.tracing import TransactionTracer
from repro.dft.payload import TamCommand, TamPayload, TamResponse


class TamInterface(Interface):
    """The TAM interface of the paper's Figure 2 (``TAM_IF``)."""

    def read(self, payload):  # pragma: no cover - interface declaration
        raise NotImplementedError

    def write(self, payload):  # pragma: no cover - interface declaration
        raise NotImplementedError

    def write_read(self, payload):  # pragma: no cover - interface declaration
        raise NotImplementedError


class TamSlaveInterface(Interface):
    """Implemented by infrastructure blocks accessed via the TAM
    (test wrappers, decompressors, pattern sources, test controllers)."""

    def tam_access(self, payload):  # pragma: no cover - interface declaration
        raise NotImplementedError


class TamChannel(Channel, TamInterface):
    """Bus-style TAM channel with addressing, arbitration and accounting."""

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 width_bits: int, clock: Clock,
                 arbitration_overhead_cycles: int = 1,
                 tracer: Optional[TransactionTracer] = None):
        super().__init__(parent, name)
        if width_bits <= 0:
            raise ValueError("TAM width must be positive")
        if arbitration_overhead_cycles < 0:
            raise ValueError("arbitration overhead cannot be negative")
        self.width_bits = width_bits
        self.clock = clock
        self.arbitration_overhead_cycles = arbitration_overhead_cycles
        self.tracer = tracer if tracer is not None else TransactionTracer()
        self._mutex = Mutex(self.sim, name=f"{self.name}.arbiter")
        self._slaves: List[Tuple[int, int, object]] = []
        #: Aggregate statistics.
        self.transaction_count = 0
        self.busy_cycles_total = 0
        self.bits_transferred = 0

    # -- topology ------------------------------------------------------------
    def bind_slave(self, slave, base_address: int, size: int) -> None:
        """Map *slave* into the TAM address space at [base, base+size)."""
        if size <= 0:
            raise ValueError("slave address range must have positive size")
        if not TamSlaveInterface.is_implemented_by(slave):
            raise TypeError(
                f"{type(slave).__name__} does not implement TamSlaveInterface"
            )
        for base, existing_size, existing in self._slaves:
            if base_address < base + existing_size and base < base_address + size:
                raise ValueError(
                    f"address range {base_address:#x}+{size:#x} overlaps slave "
                    f"{getattr(existing, 'name', existing)!r}"
                )
        self._slaves.append((base_address, size, slave))
        self._slaves.sort(key=lambda entry: entry[0])

    def decode(self, address: int):
        """Return ``(slave, offset)`` for *address* or ``(None, None)``."""
        for base, size, slave in self._slaves:
            if base <= address < base + size:
                return slave, address - base
        return None, None

    @property
    def slaves(self) -> List[object]:
        return [slave for _, _, slave in self._slaves]

    # -- timing helpers --------------------------------------------------------
    def transfer_cycles(self, bits: int) -> int:
        """Bus cycles needed to move *bits* of payload data."""
        if bits <= 0:
            return 0
        return math.ceil(bits / self.width_bits)

    def transaction_cycles(self, payload: TamPayload) -> int:
        """Total cycles a transaction occupies the TAM."""
        return self.arbitration_overhead_cycles + self.transfer_cycles(payload.total_bits)

    # -- low-level occupancy -----------------------------------------------------
    def occupy(self, initiator: str, busy_cycles: int, kind: str = "burst",
               address: Optional[int] = None, data_bits: int = 0,
               attributes: Optional[Dict[str, object]] = None):
        """Reserve the TAM for *busy_cycles* (blocking; ``yield from``).

        This is the primitive used by approximately-timed test flows that
        stream data over the TAM (external scan tests, processor-driven memory
        tests): the channel is held exactly for the cycles in which data beats
        occur, which makes the recorded transaction stream directly usable for
        TAM-utilization analysis.

        Returns ``None``; the transaction lands on the channel's tracer (when
        enabled) and in the aggregate channel counters.
        """
        if busy_cycles < 0:
            raise ValueError("busy_cycles cannot be negative")
        yield from self._mutex.acquire()
        start_fs = self.sim.now_fs
        try:
            if busy_cycles:
                yield Timeout(self.clock.cycles(busy_cycles))
        finally:
            self._mutex.release()
        self.transaction_count += 1
        self.busy_cycles_total += busy_cycles
        self.bits_transferred += data_bits
        tracer = self.tracer
        if tracer.enabled:  # disabled tracing costs exactly this flag check
            tracer.record_fs(
                self.name, kind, start_fs, self.sim.now_fs,
                initiator=initiator, address=address, data_bits=data_bits,
                attributes=dict(attributes or {}, busy_cycles=busy_cycles),
            )

    # -- TAM_IF implementation ---------------------------------------------------
    def transport(self, payload: TamPayload):
        """Arbitraded, timed transport of *payload* with slave delivery."""
        cycles = self.transaction_cycles(payload)
        yield from self.occupy(
            initiator=payload.initiator, busy_cycles=cycles,
            kind=payload.command.value, address=payload.address,
            data_bits=payload.total_bits, attributes=payload.attributes,
        )
        slave, offset = self.decode(payload.address)
        if slave is None:
            payload.complete(TamResponse.ADDRESS_ERROR)
            return payload
        payload.attributes.setdefault("offset", offset)
        slave.tam_access(payload)
        if payload.status is TamResponse.INCOMPLETE:
            payload.complete(TamResponse.OK)
        return payload

    def write(self, payload: TamPayload):
        """TAM_IF ``write``: transfer stimuli to the addressed slave."""
        if payload.command is not TamCommand.WRITE:
            payload.command = TamCommand.WRITE
        return (yield from self.transport(payload))

    def read(self, payload: TamPayload):
        """TAM_IF ``read``: transfer responses from the addressed slave."""
        if payload.command is not TamCommand.READ:
            payload.command = TamCommand.READ
        return (yield from self.transport(payload))

    def write_read(self, payload: TamPayload):
        """TAM_IF ``write_read``: combined scan-style access."""
        if payload.command is not TamCommand.WRITE_READ:
            payload.command = TamCommand.WRITE_READ
        return (yield from self.transport(payload))

    # -- statistics -----------------------------------------------------------------
    @property
    def contention_count(self) -> int:
        """Number of transactions that had to wait for the TAM."""
        return self._mutex.contentions

    def __repr__(self):
        return (
            f"TamChannel({self.name!r}, width={self.width_bits}, "
            f"transactions={self.transaction_count})"
        )


class AteLink(Channel):
    """The channel between the ATE and the external bus interface.

    Typically the bandwidth bottleneck for uncompressed external test: the
    link is narrow (a few pins) compared to the on-chip TAM.  The link is
    full-duplex: stimuli move towards the EBI while responses of the previous
    pattern move back, so a combined transfer is paced by the larger of the
    two directions.
    """

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 width_bits: int, clock: Clock,
                 tracer: Optional[TransactionTracer] = None):
        super().__init__(parent, name)
        if width_bits <= 0:
            raise ValueError("ATE link width must be positive")
        self.width_bits = width_bits
        self.clock = clock
        self.tracer = tracer if tracer is not None else TransactionTracer()
        self._mutex = Mutex(self.sim, name=f"{self.name}.arbiter")
        self.transaction_count = 0
        self.busy_cycles_total = 0

    def transfer_cycles(self, stimulus_bits: int, response_bits: int = 0) -> int:
        """ATE cycles to move a stimulus/response pair over the link."""
        bits = max(stimulus_bits, response_bits)
        if bits <= 0:
            return 0
        return math.ceil(bits / self.width_bits)

    def transfer(self, initiator: str, stimulus_bits: int, response_bits: int = 0,
                 kind: str = "ate_transfer",
                 attributes: Optional[Dict[str, object]] = None):
        """Blocking transfer over the link (``yield from``).

        Returns ``None``; the transfer lands on the link's tracer (when
        enabled) and in the aggregate link counters.
        """
        cycles = self.transfer_cycles(stimulus_bits, response_bits)
        yield from self._mutex.acquire()
        start_fs = self.sim.now_fs
        try:
            if cycles:
                yield Timeout(self.clock.cycles(cycles))
        finally:
            self._mutex.release()
        self.transaction_count += 1
        self.busy_cycles_total += cycles
        tracer = self.tracer
        if tracer.enabled:  # disabled tracing costs exactly this flag check
            tracer.record_fs(
                self.name, kind, start_fs, self.sim.now_fs,
                initiator=initiator,
                data_bits=max(stimulus_bits, response_bits),
                attributes=dict(attributes or {}, busy_cycles=cycles),
            )

    def __repr__(self):
        return f"AteLink({self.name!r}, width={self.width_bits})"
