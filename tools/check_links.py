#!/usr/bin/env python3
"""Link-check markdown files: dead *relative* links fail the build.

Usage::

    python tools/check_links.py README.md docs/*.md

Checks every inline markdown link ``[text](target)``:

* ``http(s)://`` / ``mailto:`` targets are skipped (no network in CI);
* ``#fragment``-only targets are checked against the headings of the same
  file (GitHub anchor style);
* everything else is treated as a path relative to the linking file and must
  exist; a ``path#fragment`` target additionally checks the fragment against
  the target file's headings.

Exit status 0 when every link resolves, 1 otherwise (one line per dead link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links; images share the syntax apart from a leading '!'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
INLINE_CODE_RE = re.compile(r"`[^`\n]*`")


def heading_anchors(text: str) -> set:
    """GitHub-style anchors of every markdown heading in *text*."""
    anchors = set()
    for heading in HEADING_RE.findall(CODE_FENCE_RE.sub("", text)):
        # Strip markdown emphasis/code markers but keep underscores: GitHub
        # preserves them in anchors (e.g. '## survivor_specs' ->
        # '#survivor_specs').
        heading = re.sub(r"[`*]", "", heading.strip()).lower()
        anchor = re.sub(r"[^\w\- ]", "", heading).replace(" ", "-")
        anchors.add(anchor)
    return anchors


def check_file(path: Path) -> list:
    """All dead links of one markdown file as (path, target, reason) rows."""
    text = path.read_text(encoding="utf-8")
    # Neither fenced blocks nor inline code spans render as links.
    stripped = INLINE_CODE_RE.sub("", CODE_FENCE_RE.sub("", text))
    problems = []
    for target in LINK_RE.findall(stripped):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:
            if fragment and fragment not in heading_anchors(text):
                problems.append((path, target, "no such heading"))
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append((path, target, "no such file"))
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved.read_text(encoding="utf-8")):
                problems.append((path, target, "no such heading"))
    return problems


def main(argv) -> int:
    paths = [Path(arg) for arg in argv] or [Path("README.md")]
    missing = [path for path in paths if not path.is_file()]
    if missing:
        for path in missing:
            print(f"error: no such markdown file: {path}", file=sys.stderr)
        return 1
    problems = []
    for path in paths:
        problems.extend(check_file(path))
    for path, target, reason in problems:
        print(f"{path}: dead link '{target}' ({reason})")
    if problems:
        print(f"{len(problems)} dead link(s) in {len(paths)} file(s)")
        return 1
    print(f"ok: {len(paths)} file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
